//! End-to-end tests of the version-8 wire surface: interactive dMAM
//! sessions served by both front ends, and the randomized store
//! auditor that catches CRC-valid corruption `dpc store verify`
//! cannot see.

use dpc_core::harness::Outcome;
use dpc_core::scheme::Assignment;
use dpc_graph::generators;
use dpc_interactive::dmam::{DmamPlanarity, DmamProtocol};
use dpc_service::client::Client;
use dpc_service::registry::SchemeId;
use dpc_service::server::{serve, ServeConfig};
use dpc_service::store::{crc32, RecordKind, SegmentStore, StoreRecord};
use dpc_service::wire::{self, Response};
use dpc_service::{AuditOptions, CertifyOptions, InteractiveOptions, SegmentConfig};
use std::io::Write;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dpc-audit-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn front_end(event_loop: bool) -> dpc_service::ServerHandle {
    serve(
        "127.0.0.1:0",
        ServeConfig {
            event_loop,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback")
}

/// An honest session over a planar graph accepts, reports the
/// measured proof sizes, and carries the paper's soundness bound:
/// a forged proof survives one challenge with probability at most
/// `1 - 1/Δ`, scaled to parts per million.
#[test]
fn honest_interactive_session_accepts_with_the_papers_bound() {
    let handle = front_end(false);
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::stacked_triangulation(40, 3);
    let max_deg = (0..g.node_count() as u32)
        .map(|v| g.degree(v))
        .max()
        .unwrap() as u64;
    match client
        .interactive(&g, InteractiveOptions::new().seed(7))
        .unwrap()
    {
        Response::Verdict {
            accept,
            reject_count,
            nodes,
            max_commit_bits,
            max_response_bits,
            soundness_ppm,
            ..
        } => {
            assert!(accept, "honest session must accept");
            assert_eq!(reject_count, 0);
            assert_eq!(nodes, g.node_count() as u64);
            assert!(max_commit_bits > 0 && max_response_bits > 0);
            assert_eq!(soundness_ppm, 1_000_000 - 1_000_000 / max_deg);
        }
        other => panic!("{other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.interactive_sessions, 1);
    assert_eq!(stats.interactive_rejects, 0);
    handle.shutdown();
}

/// Wire-level soundness: Merlin commits to a planarized subgraph of a
/// non-planar graph and replays its honest responses. Over many
/// independent seeds some challenge must select a removed edge, so
/// the detection rate is strictly positive — the paper's one-sided
/// randomized-soundness guarantee, observed through the server.
#[test]
fn forged_sessions_are_detected_at_a_positive_rate() {
    let handle = front_end(true);
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::planted_kuratowski(20, true, 1, 11);
    let sub = dpc_core::adversary::planarize(&g);
    let proto = DmamPlanarity::new();
    let commit = proto.commit(&sub).expect("planarized subgraph commits");

    let trials = 24u64;
    let mut rejected = 0u64;
    for seed in 0..trials {
        let session = 100 + seed;
        client
            .send_body(&wire::encode_interactive_begin_request(
                session,
                seed,
                &g,
                &commit,
                SchemeId::PLANARITY,
            ))
            .unwrap();
        let challenge = match client.recv().unwrap() {
            Response::Challenge {
                session: s,
                challenge,
            } => {
                assert_eq!(s, session);
                challenge
            }
            other => panic!("{other:?}"),
        };
        let resp = proto.respond(&sub, &commit, challenge);
        client
            .send_body(&wire::encode_interactive_respond_request(session, &resp))
            .unwrap();
        match client.recv().unwrap() {
            Response::Verdict {
                session: s, accept, ..
            } => {
                assert_eq!(s, session);
                if !accept {
                    rejected += 1;
                }
            }
            other => panic!("{other:?}"),
        }
    }
    let rate = rejected as f64 / trials as f64;
    assert!(rate > 0.0, "some challenge must catch the lie");
    let stats = client.stats().unwrap();
    assert_eq!(stats.interactive_sessions, trials);
    assert_eq!(stats.interactive_rejects, rejected);
    handle.shutdown();
}

/// Scripts one fixed byte sequence — a protocol violation, an honest
/// session, and a stats-free second session under another seed —
/// against both front ends and requires the raw response byte
/// streams to be identical. The transcript property is structural
/// (both front ends answer interactive kinds at the connection
/// layer), and this pins it.
#[test]
fn interactive_transcripts_are_byte_identical_across_front_ends() {
    // the scripted client side, fixed once
    let g = generators::grid(5, 4);
    let proto = DmamPlanarity::new();
    let commit = proto.commit(&g).unwrap();
    let mut sessions = Vec::new();
    for seed in [3u64, 8] {
        let challenge = dpc_interactive::dmam::challenge_from_seed(seed);
        let resp = proto.respond(&g, &commit, challenge);
        sessions.push((seed, resp));
    }

    let mut script: Vec<Vec<u8>> = Vec::new();
    // a Respond with no session open: must be a clean error
    script.push(wire::encode_interactive_respond_request(9, &commit));
    for (i, (seed, resp)) in sessions.iter().enumerate() {
        let session = i as u64 + 1;
        script.push(wire::encode_interactive_begin_request(
            session,
            *seed,
            &g,
            &commit,
            SchemeId::PLANARITY,
        ));
        script.push(wire::encode_interactive_respond_request(session, resp));
    }

    let transcript = |event_loop: bool| -> Vec<u8> {
        let handle = front_end(event_loop);
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        let mut sent = Vec::new();
        for body in &script {
            wire::write_frame(&mut sent, body).unwrap();
        }
        stream.write_all(&sent).unwrap();
        // one response frame per request frame, in order
        let mut out = Vec::new();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        for _ in 0..script.len() {
            let body = wire::read_frame(&mut reader).unwrap().expect("response");
            wire::write_frame(&mut out, &body).unwrap();
        }
        drop(reader);
        handle.shutdown();
        out
    };

    let threaded = transcript(false);
    let reactor = transcript(true);
    assert_eq!(
        threaded, reactor,
        "interactive transcripts must be byte-identical across front ends"
    );
    // and the scripted conversation went as designed: error, then
    // challenge/verdict pairs, every verdict accepting
    let mut cursor = std::io::Cursor::new(threaded.as_slice());
    let mut responses = Vec::new();
    while let Some(body) = wire::read_frame(&mut cursor).unwrap() {
        responses.push(Response::decode(&body).unwrap());
    }
    match responses.as_slice() {
        [Response::Error(e), Response::Challenge { session: 1, .. }, Response::Verdict {
            session: 1,
            accept: true,
            ..
        }, Response::Challenge { session: 2, .. }, Response::Verdict {
            session: 2,
            accept: true,
            ..
        }] => assert!(e.contains("session"), "{e}"),
        other => panic!("scripted conversation answered {other:?}"),
    }
}

/// Rewrites the store's one segment file, flipping a verdict bit in
/// the certified record's outcome and recomputing the CRC so the
/// frame stays valid.
fn corrupt_stored_outcome(dir: &std::path::Path) {
    let seg = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "dpcs"))
        .expect("a segment file");
    let bytes = std::fs::read(&seg).unwrap();
    let (magic, mut rest) = bytes.split_at(8);
    let mut rebuilt = magic.to_vec();
    let mut corrupted = false;
    while !rest.is_empty() {
        let total = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let body = &rest[4..4 + total - 4];
        let crc = &rest[total..total + 4];
        rest = &rest[total + 4..];
        let record = StoreRecord::decode_body(body).unwrap();
        let record = if record.kind == RecordKind::Certified && !corrupted {
            corrupted = true;
            // decode the suffix, flip one accept verdict, re-encode:
            // the bytes stay structurally valid, only the answer lies
            let mut buf = record.suffix.as_slice();
            let mut outcome = Outcome::decode_from(&mut buf).unwrap();
            let assignment = Assignment::decode_from(&mut buf).unwrap();
            outcome.verdicts[0] = false;
            let mut suffix = Vec::new();
            outcome.encode_into(&mut suffix);
            assignment.encode_into(&mut suffix);
            StoreRecord {
                kind: RecordKind::Certified,
                keyed: record.keyed,
                suffix,
            }
        } else {
            assert_eq!(crc32(body), u32::from_le_bytes(crc.try_into().unwrap()));
            record
        };
        let body = record.encode_body();
        rebuilt.extend_from_slice(&(body.len() as u32 + 4).to_le_bytes());
        rebuilt.extend_from_slice(&body);
        rebuilt.extend_from_slice(&crc32(&body).to_le_bytes());
    }
    assert!(corrupted, "no certified record found to corrupt");
    std::fs::write(&seg, rebuilt).unwrap();
}

/// The acceptance gate for the auditor: a stored record whose outcome
/// bytes were flipped *and* whose CRC was recomputed passes `dpc
/// store verify` (CRC + decode + scheme checks all hold — the lie is
/// semantic), but a bounded number of audit sweeps catches it,
/// quarantines the key, and the next query transparently re-proves —
/// the client never sees a failure, let alone the forged verdict.
#[test]
fn auditor_quarantines_crc_valid_corruption_store_verify_accepts() {
    let dir = scratch_dir("quarantine");
    let g = generators::stacked_triangulation(30, 9);

    // 1. prove once, persisting the certificate
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            store: Some(SegmentConfig::new(&dir)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.certify(&g, CertifyOptions::new()).unwrap() {
        Response::Certified { cached: false, .. } => {}
        other => panic!("{other:?}"),
    }
    handle.shutdown();

    // 2. corrupt the stored outcome offline, CRC recomputed
    corrupt_stored_outcome(&dir);

    // 3. `dpc store verify` cannot see it: every record CRC-checks,
    // decodes, and names a registered scheme (this is exactly why the
    // auditor exists)
    let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
    let report = store.verify(&dpc_service::SchemeRegistry::standard());
    assert_eq!(report.records, 1);
    assert!(
        report.problems.is_empty(),
        "structural verify must accept the semantic lie: {:?}",
        report.problems
    );
    drop(store);

    // 4. restart with auditing on; one on-demand pass (the same sweep
    // the background auditor runs every other flusher tick) catches
    // and quarantines the record — bounded, not eventual, because the
    // store holds exactly one record and sampling is exhaustive
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            store: Some(SegmentConfig::new(&dir)),
            audit: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .audit(AuditOptions::new().samples(16).seed(5))
        .unwrap()
    {
        Response::AuditReport {
            sampled,
            failed,
            quarantined,
        } => {
            assert_eq!(sampled, 1, "one stored record, sampled exhaustively");
            assert_eq!(failed, 1, "the flipped verdict must fail re-verification");
            assert_eq!(quarantined, 1, "and be purged from both tiers");
        }
        other => panic!("{other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.audit_sweeps >= 1);
    assert_eq!(stats.audit_quarantined, 1);

    // 5. zero client-visible failures: the key re-proves fresh (the
    // quarantined bytes are gone from both tiers) and accepts
    match client.certify(&g, CertifyOptions::new()).unwrap() {
        Response::Certified {
            cached: false,
            outcome,
            ..
        } => assert!(outcome.all_accept(), "re-proved certificate accepts"),
        other => panic!("{other:?}"),
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The background auditor (no on-demand request) reaches the same
/// quarantine within bounded sweeps: one sweep fires every other
/// 250 ms flusher tick, so a few seconds bound the wait.
#[test]
fn background_auditor_sweeps_quarantine_corruption() {
    let dir = scratch_dir("background");
    let g = generators::stacked_triangulation(24, 4);
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            store: Some(SegmentConfig::new(&dir)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.certify(&g, CertifyOptions::new()).unwrap();
    handle.shutdown();

    corrupt_stored_outcome(&dir);

    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            store: Some(SegmentConfig::new(&dir)),
            audit: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let s = handle.stats();
        if s.audit_quarantined >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background sweeps must quarantine within bounded time: {s:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    // and the repaired path stays invisible to clients
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.certify(&g, CertifyOptions::new()).unwrap() {
        Response::Certified {
            cached: false,
            outcome,
            ..
        } => assert!(outcome.all_accept()),
        other => panic!("{other:?}"),
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
