//! Algorithm 1 of the paper: the path-outerplanarity verification
//! procedure executed at one spine node `x`.
//!
//! The spine is the witness ordering `1..=N`; every spine node carries an
//! interval label `I(x) = [a, b]` — the tightest chord strictly covering
//! `x` (or `[0, N+1]` if none). Two virtual nodes `0` and `N+1` with
//! `I = [−∞, +∞]` pad the ends, so every real node has a smaller and a
//! larger neighbor. This module is shared by the standalone
//! path-outerplanarity scheme (Lemma 2), where each spine node is a real
//! network node, and by the planarity scheme (Theorem 1), where node `x`
//! of `G` simulates the procedure at every copy `i ∈ f⁻¹(x)` of the
//! spine of `G_{T,f}`.

/// An interval label `[a, b]`. Sentinel `[-1, N+2]`-style values encode
/// the virtual `[−∞, +∞]`.
pub type Interval = (i64, i64);

/// The local view of one spine node, assembled by the caller from the
/// certificates heard in the communication round.
#[derive(Debug, Clone)]
pub struct SpineView {
    /// Position `x` of this node on the spine (`1..=N`).
    pub x: i64,
    /// The spine length `N` (paper's `n` in Lemma 2; `2n−1` in Thm 1).
    pub n: i64,
    /// This node's interval label `I(x)`.
    pub interval: Interval,
    /// All neighbors on the spine with their interval labels, including
    /// the virtual `0` / `N+1` where applicable. Need not be sorted.
    pub neighbors: Vec<(i64, Interval)>,
}

/// The virtual interval `[−∞, +∞]` of the two virtual end nodes,
/// represented with sentinels that strictly contain every real interval.
pub fn virtual_interval(n: i64) -> Interval {
    (-1, n + 2)
}

/// The default interval `[0, N+1]` of nodes covered by no chord.
pub fn default_interval(n: i64) -> Interval {
    (0, n + 1)
}

/// Runs Algorithm 1 at one spine node. Returns `true` iff every check
/// passes (the node accepts).
pub fn verify_spine_node(view: &SpineView) -> bool {
    let x = view.x;
    let n = view.n;
    if x < 1 || x > n {
        return false;
    }
    // line 1: split neighbors; sort below descending (x−_0 > x−_1 > ...)
    // and above ascending (x+_0 < x+_1 < ...)
    let mut below: Vec<(i64, Interval)> = Vec::new();
    let mut above: Vec<(i64, Interval)> = Vec::new();
    for &(p, iv) in &view.neighbors {
        if p == x {
            return false; // self-loop on the spine: malformed
        }
        if p < x {
            below.push((p, iv));
        } else {
            above.push((p, iv));
        }
    }
    below.sort_by_key(|l| std::cmp::Reverse(l.0));
    above.sort_by_key(|l| l.0);
    // duplicates mean two parallel spine edges: malformed
    if below.windows(2).any(|w| w[0].0 == w[1].0) || above.windows(2).any(|w| w[0].0 == w[1].0) {
        return false;
    }
    // the virtual padding guarantees ℓ ≥ 0 and k ≥ 0: a smaller and a
    // larger neighbor must exist (the spine path plus virtual ends)
    if below.is_empty() || above.is_empty() {
        return false;
    }
    // line 3 (spine consistency): the immediate predecessor/successor on
    // the spine must be neighbors (x−_0 = x−1, x+_0 = x+1)
    if below[0].0 != x - 1 || above[0].0 != x + 1 {
        return false;
    }
    // line 4-5: I(x) = [a, b] with a < x < b, all neighbors within [a, b]
    let (a, b) = view.interval;
    if !(a < x && x < b) {
        return false;
    }
    if view.neighbors.iter().any(|&(p, _)| p < a || p > b) {
        return false;
    }
    let k = above.len() - 1;
    let l = below.len() - 1;
    // lines 6-7: for i in 0..k-1 check I(x+_i) = [x, x+_{i+1}]
    for i in 0..k {
        if above[i].1 != (x, above[i + 1].0) {
            return false;
        }
    }
    // lines 8-9: for i in 0..l-1 check I(x−_i) = [x−_{i+1}, x]
    for i in 0..l {
        if below[i].1 != (below[i + 1].0, x) {
            return false;
        }
    }
    // lines 10-11: if x+_k < b then I(x+_k) = [a, b]
    if above[k].0 < b && above[k].1 != (a, b) {
        return false;
    }
    // lines 12-13: if x−_l > a then I(x−_l) = [a, b]
    if below[l].0 > a && below[l].1 != (a, b) {
        return false;
    }
    // lines 14-17: neighbors whose interval is anchored at x
    let adjacent = |p: i64| view.neighbors.iter().any(|&(q, _)| q == p);
    for &(_, (c, d)) in &view.neighbors {
        let other = if c == x {
            Some(d)
        } else if d == x {
            Some(c)
        } else {
            None
        };
        if let Some(o) = other {
            // line 16: the other endpoint of I(y) is adjacent to x
            if !adjacent(o) {
                return false;
            }
            // line 17: I(y) ⊊ I(x)
            let proper_subset = a <= c && d <= b && (c, d) != (a, b);
            if !proper_subset {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the views of a full spine instance and runs Algorithm 1 at
    /// every real node. `chords` are (a, b) pairs with b > a+1.
    fn run_all(n: i64, chords: &[(i64, i64)]) -> Vec<bool> {
        // compute I(x) by brute force: tightest chord strictly containing x
        let interval_of = |x: i64| -> Interval {
            let mut best = default_interval(n);
            for &(a, b) in chords {
                if a < x && x < b && (b - a) < (best.1 - best.0) {
                    best = (a, b);
                }
            }
            best
        };
        let neighbors_of = |x: i64| -> Vec<(i64, Interval)> {
            let mut nb = Vec::new();
            let mut push = |p: i64| {
                if p == 0 || p == n + 1 {
                    nb.push((p, virtual_interval(n)));
                } else {
                    nb.push((p, interval_of(p)));
                }
            };
            if x == 1 {
                push(0);
            }
            if x > 1 {
                push(x - 1);
            }
            if x < n {
                push(x + 1);
            }
            if x == n {
                push(n + 1);
            }
            for &(a, b) in chords {
                if a == x {
                    push(b);
                }
                if b == x {
                    push(a);
                }
            }
            nb
        };
        (1..=n)
            .map(|x| {
                verify_spine_node(&SpineView {
                    x,
                    n,
                    interval: interval_of(x),
                    neighbors: neighbors_of(x),
                })
            })
            .collect()
    }

    #[test]
    fn bare_path_accepts() {
        assert!(run_all(6, &[]).iter().all(|&b| b));
    }

    #[test]
    fn nested_chords_accept() {
        assert!(run_all(8, &[(1, 8), (2, 7), (3, 6), (3, 5)])
            .iter()
            .all(|&b| b));
    }

    #[test]
    fn disjoint_chords_accept() {
        assert!(run_all(9, &[(1, 4), (4, 7), (7, 9), (1, 9)])
            .iter()
            .all(|&b| b));
    }

    #[test]
    fn crossing_chords_reject_somewhere() {
        // (1,5) and (3,7) cross: not path-outerplanar
        let verdicts = run_all(8, &[(1, 5), (3, 7)]);
        assert!(
            verdicts.iter().any(|&b| !b),
            "soundness: some node must reject, got {verdicts:?}"
        );
    }

    #[test]
    fn many_crossings_reject() {
        let verdicts = run_all(10, &[(1, 6), (2, 8), (5, 10), (3, 9)]);
        assert!(verdicts.iter().any(|&b| !b));
    }

    #[test]
    fn wrong_interval_rejected() {
        // honest chords but a lying interval at node 3
        let n = 6;
        let chords = [(2i64, 5i64)];
        let mut views: Vec<SpineView> = (1..=n)
            .map(|x| {
                let interval = if 2 < x && x < 5 {
                    (2, 5)
                } else {
                    default_interval(n)
                };
                let mut neighbors = Vec::new();
                if x == 1 {
                    neighbors.push((0, virtual_interval(n)));
                }
                if x > 1 {
                    let p = x - 1;
                    let iv = if 2 < p && p < 5 {
                        (2, 5)
                    } else {
                        default_interval(n)
                    };
                    neighbors.push((p, iv));
                }
                if x < n {
                    let p = x + 1;
                    let iv = if 2 < p && p < 5 {
                        (2, 5)
                    } else {
                        default_interval(n)
                    };
                    neighbors.push((p, iv));
                }
                if x == n {
                    neighbors.push((n + 1, virtual_interval(n)));
                }
                for &(a, b) in &chords {
                    if a == x {
                        neighbors.push((b, default_interval(n)));
                    }
                    if b == x {
                        neighbors.push((a, default_interval(n)));
                    }
                }
                SpineView {
                    x,
                    n,
                    interval,
                    neighbors,
                }
            })
            .collect();
        assert!(
            views.iter().all(verify_spine_node_ref),
            "honest baseline accepts"
        );
        // now node 3 claims I(3) = [0, 7] although chord (2,5) covers it:
        views[2].interval = default_interval(n);
        // neighbor 4 sees node 3's (unchanged) interval, but node 3's own
        // checks of line 7 now fail against neighbor 4's interval
        assert!(!verify_spine_node(&views[2]));
    }

    fn verify_spine_node_ref(v: &SpineView) -> bool {
        verify_spine_node(v)
    }

    #[test]
    fn missing_spine_neighbor_rejected() {
        let n = 5;
        let v = SpineView {
            x: 3,
            n,
            interval: default_interval(n),
            neighbors: vec![(2, default_interval(n))], // no successor
        };
        assert!(!verify_spine_node(&v));
    }

    #[test]
    fn out_of_range_position_rejected() {
        let n = 5;
        let v = SpineView {
            x: 9,
            n,
            interval: default_interval(n),
            neighbors: vec![(8, default_interval(n)), (10, default_interval(n))],
        };
        assert!(!verify_spine_node(&v));
    }

    #[test]
    fn neighbor_outside_interval_rejected() {
        let n = 8;
        // x = 4 claims I = (3,5) but has neighbor 8
        let v = SpineView {
            x: 4,
            n,
            interval: (3, 5),
            neighbors: vec![
                (3, default_interval(n)),
                (5, default_interval(n)),
                (8, default_interval(n)),
            ],
        };
        assert!(!verify_spine_node(&v));
    }

    #[test]
    fn chord_sharing_endpoints_accept() {
        // chords (1,4), (4,8), (1,8): laminar with shared endpoints
        assert!(run_all(8, &[(1, 4), (4, 8), (1, 8)]).iter().all(|&b| b));
    }

    #[test]
    fn double_cover_same_interval_accepts() {
        // two disjoint chords under one big chord
        assert!(run_all(12, &[(1, 12), (2, 6), (6, 11), (3, 5), (7, 10)])
            .iter()
            .all(|&b| b));
    }
}
