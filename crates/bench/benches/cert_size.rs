//! E1-oriented bench: prover certificate construction and the resulting
//! certificate sizes across planar families (reported via Criterion
//! throughput of the prover; sizes printed once per group), plus the
//! batch engine proving a whole family in one call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_core::batch::BatchRunner;
use dpc_core::scheme::ProofLabelingScheme;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_graph::generators;

fn bench_cert_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("cert_size");
    group.sample_size(10);
    let scheme = PlanarityScheme::new();
    for &n in &[256u32, 1024, 4096] {
        let g = generators::stacked_triangulation(n, 42);
        let a = scheme.prove(&g).unwrap();
        println!(
            "n={n}: max cert {} bits, avg {:.1}",
            a.max_bits(),
            a.avg_bits()
        );
        group.bench_with_input(BenchmarkId::new("triangulation", n), &g, |b, g| {
            b.iter(|| scheme.prove(std::hint::black_box(g)).unwrap().max_bits())
        });
        let t = generators::random_tree(n, 42);
        group.bench_with_input(BenchmarkId::new("tree", n), &t, |b, t| {
            b.iter(|| scheme.prove(std::hint::black_box(t)).unwrap().max_bits())
        });
    }
    // the batch engine proving + verifying a 64-graph family in one call
    let batch: Vec<_> = (0..64u64)
        .map(|s| generators::stacked_triangulation(512, s))
        .collect();
    let runner = BatchRunner::new();
    group.bench_with_input(
        BenchmarkId::new("batch_prove_verify", batch.len()),
        &batch,
        |b, batch| {
            b.iter(|| {
                let report = runner.run_slice(&scheme, std::hint::black_box(batch));
                assert_eq!(report.summary.accepted, batch.len());
                report.summary.max_cert_bits
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_cert_size);
criterion_main!(benches);
