//! The proof-labeling-scheme abstraction.

use dpc_graph::Graph;
use dpc_runtime::{get_bytes, get_uvarint, put_uvarint, DecodeError, NodeCtx, Payload};
use std::fmt;

/// A certificate assignment: one payload per node.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// `certs[v]` is the certificate handed to node `v`.
    pub certs: Vec<Payload>,
}

impl Assignment {
    /// Assignment of empty certificates for `n` nodes.
    pub fn empty(n: usize) -> Self {
        Assignment {
            certs: vec![Payload::empty(); n],
        }
    }

    /// Size of the largest certificate, in bits.
    pub fn max_bits(&self) -> usize {
        self.certs.iter().map(|c| c.bit_len).max().unwrap_or(0)
    }

    /// Average certificate size in bits.
    pub fn avg_bits(&self) -> f64 {
        if self.certs.is_empty() {
            return 0.0;
        }
        self.certs.iter().map(|c| c.bit_len as f64).sum::<f64>() / self.certs.len() as f64
    }

    /// Total bits across all certificates.
    pub fn total_bits(&self) -> usize {
        self.certs.iter().map(|c| c.bit_len).sum()
    }

    /// Certificate-size statistics in one pass.
    pub fn stats(&self) -> CertStats {
        CertStats {
            count: self.certs.len(),
            max_bits: self.max_bits(),
            total_bits: self.total_bits(),
            avg_bits: self.avg_bits(),
        }
    }

    /// Total *bytes* the assignment occupies (each certificate rounded
    /// up to whole bytes) — the cache-budget measure of the service.
    pub fn byte_size(&self) -> usize {
        self.certs.iter().map(|c| c.bit_len.div_ceil(8)).sum()
    }

    /// Appends the wire encoding: certificate count, then per
    /// certificate the exact bit length (varint) followed by
    /// `ceil(bit_len / 8)` raw bytes. Byte-aligned so decoded payloads
    /// are byte-identical to the encoded ones.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.certs.len() as u64);
        for c in self.certs.iter() {
            put_uvarint(out, c.bit_len as u64);
            out.extend_from_slice(&c.as_bytes()[..c.bit_len.div_ceil(8)]);
        }
    }

    /// Decodes an assignment from the front of `buf`, advancing it.
    /// Inverse of [`Assignment::encode_into`].
    ///
    /// The certificate count is validated against the remaining buffer
    /// (each certificate costs at least one byte on the wire) and a
    /// fixed per-node ceiling, so a hostile header cannot amplify a
    /// small frame into gigabytes of `Payload` allocations.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Assignment, DecodeError> {
        let count = get_uvarint(buf)? as usize;
        if count > buf.len() || count > MAX_WIRE_CERTS {
            return Err(DecodeError::OutOfBits);
        }
        let mut certs = Vec::with_capacity(count);
        for _ in 0..count {
            let bit_len = get_uvarint(buf)? as usize;
            let bytes = get_bytes(buf, bit_len.div_ceil(8))?;
            certs.push(Payload::from_bytes(bytes.to_vec(), bit_len));
        }
        Ok(Assignment { certs })
    }
}

/// Upper bound on certificates (= nodes) in one wire assignment,
/// matching the service's *streamed* graph-size cap: chunk-uploaded
/// giant graphs produce outcomes larger than any single-frame graph,
/// and their summaries must still decode.
pub const MAX_WIRE_CERTS: usize = 1 << 24;

/// Certificate-size statistics of an [`Assignment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertStats {
    /// Number of certificates (= nodes).
    pub count: usize,
    /// Largest certificate in bits.
    pub max_bits: usize,
    /// Total bits across all certificates.
    pub total_bits: usize,
    /// Average certificate size in bits.
    pub avg_bits: f64,
}

/// Why the honest prover declined to produce certificates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveError {
    /// The instance is not in the certified class (e.g. the graph is not
    /// planar and the scheme certifies planarity). Soundness in action:
    /// there is nothing valid to hand out.
    NotInClass(&'static str),
    /// The model assumes connected networks.
    NotConnected,
    /// The scheme needs auxiliary input it was not given (e.g. a
    /// Hamiltonian-path witness for path-outerplanarity).
    MissingWitness(&'static str),
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProveError::NotInClass(c) => write!(f, "instance is not in the class: {c}"),
            ProveError::NotConnected => write!(f, "the network must be connected"),
            ProveError::MissingWitness(w) => write!(f, "missing witness: {w}"),
        }
    }
}

impl std::error::Error for ProveError {}

/// A proof-labeling scheme: centralized prover + 1-round local verifier.
///
/// The verifier is *stateless by node*: it sees the node's initial
/// knowledge ([`NodeCtx`]), its own certificate, and the certificates of
/// its neighbors in port order — exactly the information available after
/// the single communication round of the PLS model.
///
/// # Example: build a scheme and certify a graph
///
/// ```
/// use dpc_core::harness::certify_pls;
/// use dpc_core::scheme::ProofLabelingScheme;
/// use dpc_core::schemes::bipartite::BipartiteScheme;
///
/// let scheme = BipartiteScheme::new();
/// let g = dpc_graph::generators::grid(4, 5); // grids are bipartite
/// let certified = certify_pls(&scheme, &g).expect("yes-instance");
/// assert!(certified.outcome.all_accept());
/// assert_eq!(certified.assignment.max_bits(), 1); // one bit per node
///
/// // an odd cycle is not bipartite: the honest prover refuses
/// let odd = dpc_graph::generators::cycle(5);
/// assert!(scheme.prove(&odd).is_err());
/// ```
pub trait ProofLabelingScheme {
    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;

    /// Honest prover: certificate assignment for a yes-instance.
    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError>;

    /// Local verification at one node after the communication round.
    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool;
}

// Delegating impls so `&S`, `&dyn ProofLabelingScheme`, and boxed
// schemes (e.g. the entries of a scheme registry) run through every
// generic harness function unchanged.

impl<S: ProofLabelingScheme + ?Sized> ProofLabelingScheme for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        (**self).prove(g)
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        (**self).verify(ctx, own, neighbors)
    }
}

impl<S: ProofLabelingScheme + ?Sized> ProofLabelingScheme for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        (**self).prove(g)
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        (**self).verify(ctx, own, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_stats() {
        let mut a = Assignment::empty(3);
        assert_eq!(a.max_bits(), 0);
        let mut w = dpc_runtime::BitWriter::new();
        w.write_bits(0b1010, 4);
        a.certs[1] = Payload::from_writer(w);
        assert_eq!(a.max_bits(), 4);
        assert_eq!(a.total_bits(), 4);
        assert!((a.avg_bits() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn assignment_wire_roundtrip() {
        let mut a = Assignment::empty(4);
        for (i, cert) in a.certs.iter_mut().enumerate() {
            let mut w = dpc_runtime::BitWriter::new();
            w.write_varint(i as u64 * 1000 + 3);
            w.write_bits(i as u64, 3); // non-byte-aligned lengths
            *cert = Payload::from_writer(w);
        }
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        let mut cursor = buf.as_slice();
        let b = Assignment::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(a.certs.len(), b.certs.len());
        for (x, y) in a.certs.iter().zip(b.certs.iter()) {
            assert_eq!(x.bit_len, y.bit_len);
            assert_eq!(x.as_bytes(), y.as_bytes());
        }
        let stats = a.stats();
        assert_eq!(stats.count, 4);
        assert_eq!(stats.total_bits, a.total_bits());
        assert!(a.byte_size() >= stats.total_bits / 8);
    }

    #[test]
    fn assignment_decode_rejects_truncation() {
        let mut a = Assignment::empty(2);
        let mut w = dpc_runtime::BitWriter::new();
        w.write_varint(77);
        a.certs[0] = Payload::from_writer(w);
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        buf.truncate(buf.len() - 1);
        let mut cursor = buf.as_slice();
        assert!(Assignment::decode_from(&mut cursor).is_err());
    }

    #[test]
    fn prove_error_display() {
        let e = ProveError::NotInClass("planar graphs");
        assert!(e.to_string().contains("planar"));
        assert_eq!(
            ProveError::NotConnected.to_string(),
            "the network must be connected"
        );
    }
}
