//! Service counters and the integer latency histogram.
//!
//! Everything here is lock-free (`AtomicU64` with relaxed ordering —
//! counters need atomicity, not ordering) so the request hot path
//! never serializes on a metrics mutex. Latencies go into a
//! power-of-two histogram: bucket `i` counts requests that took
//! `[2^i, 2^(i+1))` microseconds, and quantiles are read back as the
//! lower bound of the bucket where the cumulative count crosses the
//! target — integer in, integer out, no floating-point accumulation.

use dpc_runtime::{get_uvarint, put_uvarint, DecodeError};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (covers up to ~2^39 µs).
pub const LATENCY_BUCKETS: usize = 40;

/// Lock-free latency histogram with power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Immutable bucket counts, as shipped in a Stats response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts observations in `[2^i, 2^(i+1))` µs
    /// (bucket 0 covers `[0, 2)`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (0 < q <= 1) in microseconds: the lower bound
    /// of the bucket where the cumulative count reaches `ceil(q * n)`.
    /// Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        1u64 << (self.buckets.len() - 1).min(63)
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Adds another histogram bucket-wise (the shorter side is
    /// zero-padded). Power-of-two buckets make fleet aggregation
    /// exact: the merged quantiles are the quantiles of the pooled
    /// observations, bucket-resolution included.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// Live counters of one registered scheme (indexed by registry slot).
#[derive(Debug, Default)]
pub struct SchemeMetrics {
    /// Certify requests routed to this scheme.
    pub certify: AtomicU64,
    /// Certificate-cache hits under this scheme's keys.
    pub hits: AtomicU64,
    /// Certificate-cache misses under this scheme's keys.
    pub misses: AtomicU64,
    /// Honest-prover executions for this scheme.
    pub proves: AtomicU64,
    /// Certify latency under this scheme (queue + service).
    pub latency: LatencyHistogram,
}

/// Live server counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Certify requests received.
    pub certify: AtomicU64,
    /// Check requests received.
    pub check: AtomicU64,
    /// Gen requests received.
    pub gen: AtomicU64,
    /// Soundness probes received.
    pub soundness: AtomicU64,
    /// Stats requests received.
    pub stats: AtomicU64,
    /// Malformed requests answered with an error.
    pub errors: AtomicU64,
    /// Worker batches that contained more than one certify request.
    pub batches: AtomicU64,
    /// Certify requests that rode in a multi-request batch.
    pub batched_certifies: AtomicU64,
    /// Honest-prover executions (cache misses + bypasses).
    pub proves: AtomicU64,
    /// End-to-end request latency (queue + service).
    pub latency: LatencyHistogram,
    /// Per-scheme counters, one slot per registry entry.
    pub per_scheme: Vec<SchemeMetrics>,
    /// Currently open connections (gauge: incremented on accept,
    /// decremented on close).
    pub conns_open: AtomicU64,
    /// Connections accepted since boot.
    pub conns_accepted: AtomicU64,
    /// Accept attempts that returned `EAGAIN` — one per reactor
    /// accept burst, so the ratio to `conns_accepted` reads as
    /// connections-per-wakeup (always 0 in threaded mode, whose
    /// accept call blocks).
    pub accept_eagain: AtomicU64,
    /// Connections closed by the idle-connection timeout.
    pub idle_timeouts: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters with no per-scheme slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh zeroed counters with one per-scheme slot per registry
    /// entry.
    pub fn with_scheme_slots(slots: usize) -> Self {
        Metrics {
            per_scheme: (0..slots).map(|_| SchemeMetrics::default()).collect(),
            ..Metrics::default()
        }
    }
}

/// A point-in-time copy of one scheme's counters, as shipped in the
/// per-scheme table of a Stats response.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemeStats {
    /// Stable wire id of the scheme.
    pub id: u16,
    /// Scheme name, echoed by the server.
    pub name: String,
    /// Certify requests routed to the scheme.
    pub certify: u64,
    /// Cache hits under the scheme's keys.
    pub hits: u64,
    /// Cache misses under the scheme's keys.
    pub misses: u64,
    /// Honest-prover executions for the scheme.
    pub proves: u64,
    /// Certify latency histogram of the scheme.
    pub latency: HistogramSnapshot,
}

/// Upper bound on per-scheme table rows accepted on decode.
const MAX_SCHEME_ROWS: usize = 4096;

fn encode_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_uvarint(out, h.buckets.len() as u64);
    for &b in &h.buckets {
        put_uvarint(out, b);
    }
}

fn decode_histogram(buf: &mut &[u8]) -> Result<HistogramSnapshot, DecodeError> {
    let buckets = get_uvarint(buf)? as usize;
    if buckets > LATENCY_BUCKETS {
        // our histograms are fixed-width; more buckets is corruption
        return Err(DecodeError::OutOfBits);
    }
    Ok(HistogramSnapshot {
        buckets: (0..buckets)
            .map(|_| get_uvarint(buf))
            .collect::<Result<_, _>>()?,
    })
}

impl SchemeStats {
    /// Appends the wire encoding of one table row.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.id as u64);
        dpc_runtime::put_string(out, &self.name);
        for v in [self.certify, self.hits, self.misses, self.proves] {
            put_uvarint(out, v);
        }
        encode_histogram(out, &self.latency);
    }

    /// Decodes one table row from the front of `buf`, advancing it.
    pub fn decode_from(buf: &mut &[u8]) -> Result<SchemeStats, DecodeError> {
        let id = get_uvarint(buf)?;
        if id > u16::MAX as u64 {
            return Err(DecodeError::OutOfBits);
        }
        let mut s = SchemeStats {
            id: id as u16,
            name: dpc_runtime::get_string(buf)?,
            ..SchemeStats::default()
        };
        for field in [&mut s.certify, &mut s.hits, &mut s.misses, &mut s.proves] {
            *field = get_uvarint(buf)?;
        }
        s.latency = decode_histogram(buf)?;
        Ok(s)
    }

    /// Adds another row's counters and latency into this one (same
    /// scheme measured on another node).
    pub fn absorb(&mut self, other: &SchemeStats) {
        self.certify += other.certify;
        self.hits += other.hits;
        self.misses += other.misses;
        self.proves += other.proves;
        self.latency.absorb(&other.latency);
    }
}

/// A point-in-time copy of every counter, as shipped in a Stats
/// response. Cache fields are merged in by the server from the
/// certificate cache's own counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Certify requests received.
    pub certify: u64,
    /// Check requests received.
    pub check: u64,
    /// Gen requests received.
    pub gen: u64,
    /// Soundness probes received.
    pub soundness: u64,
    /// Stats requests received.
    pub stats: u64,
    /// Malformed requests answered with an error.
    pub errors: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Bytes charged against the cache budget.
    pub cache_bytes: u64,
    /// Worker batches with more than one certify request.
    pub batches: u64,
    /// Certify requests that rode in a multi-request batch.
    pub batched_certifies: u64,
    /// Honest-prover executions.
    pub proves: u64,
    /// Request latency histogram.
    pub latency: HistogramSnapshot,
    /// Per-scheme counters, one row per registered scheme.
    pub per_scheme: Vec<SchemeStats>,
    /// Cold-tier lookups that found a record (v3; 0 without a store).
    pub store_hits: u64,
    /// Cold-tier lookups that found nothing (v3).
    pub store_misses: u64,
    /// Hot-tier evictions demoted to the cold tier instead of lost
    /// (v3).
    pub store_demotes: u64,
    /// Cold hits promoted back into the hot tier (v3).
    pub store_promotes: u64,
    /// Live records in the cold tier (v3 gauge).
    pub store_records: u64,
    /// Live record bytes in the cold tier (v3 gauge).
    pub store_bytes: u64,
    /// Cold-tier segment files (v3 gauge; > 0 iff a store is
    /// attached).
    pub store_segments: u64,
    /// Write-behind appends that failed (v3). Non-zero means up to
    /// this many certificates are *not* in the store despite the
    /// demotion counter — they re-prove after a restart.
    pub store_write_errors: u64,
    /// Currently open connections (v4 gauge).
    pub conns_open: u64,
    /// Connections accepted since boot (v4).
    pub conns_accepted: u64,
    /// Accept attempts that returned `EAGAIN` (v4; reactor only —
    /// the threaded accept loop blocks instead).
    pub accept_eagain: u64,
    /// Connections closed by the idle timeout (v4).
    pub idle_timeouts: u64,
}

impl StatsSnapshot {
    /// Total requests received.
    pub fn requests_total(&self) -> u64 {
        self.certify + self.check + self.gen + self.soundness + self.stats
    }

    /// The row of a scheme, by name.
    pub fn scheme(&self, name: &str) -> Option<&SchemeStats> {
        self.per_scheme.iter().find(|s| s.name == name)
    }

    /// Appends the wire encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.certify,
            self.check,
            self.gen,
            self.soundness,
            self.stats,
            self.errors,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_entries,
            self.cache_bytes,
            self.batches,
            self.batched_certifies,
            self.proves,
        ] {
            put_uvarint(out, v);
        }
        encode_histogram(out, &self.latency);
        put_uvarint(out, self.per_scheme.len() as u64);
        for row in &self.per_scheme {
            row.encode_into(out);
        }
        // version-3 tail: storage-tier counters and gauges, strictly
        // after every v2 field so the v2 prefix decodes unchanged
        for v in [
            self.store_hits,
            self.store_misses,
            self.store_demotes,
            self.store_promotes,
            self.store_records,
            self.store_bytes,
            self.store_segments,
            self.store_write_errors,
        ] {
            put_uvarint(out, v);
        }
        // version-4 tail: connection counters, strictly after the v3
        // tail for the same reason
        for v in [
            self.conns_open,
            self.conns_accepted,
            self.accept_eagain,
            self.idle_timeouts,
        ] {
            put_uvarint(out, v);
        }
    }

    /// Decodes a snapshot from the front of `buf`, advancing it.
    pub fn decode_from(buf: &mut &[u8]) -> Result<StatsSnapshot, DecodeError> {
        let mut s = StatsSnapshot::default();
        for field in [
            &mut s.certify,
            &mut s.check,
            &mut s.gen,
            &mut s.soundness,
            &mut s.stats,
            &mut s.errors,
            &mut s.cache_hits,
            &mut s.cache_misses,
            &mut s.cache_evictions,
            &mut s.cache_entries,
            &mut s.cache_bytes,
            &mut s.batches,
            &mut s.batched_certifies,
            &mut s.proves,
        ] {
            *field = get_uvarint(buf)?;
        }
        s.latency = decode_histogram(buf)?;
        let rows = get_uvarint(buf)? as usize;
        if rows > MAX_SCHEME_ROWS {
            return Err(DecodeError::OutOfBits);
        }
        s.per_scheme = (0..rows)
            .map(|_| SchemeStats::decode_from(buf))
            .collect::<Result<_, _>>()?;
        // the v3 storage tail is absent in version-2 bodies; absence
        // decodes as zeros (no store attached)
        if !buf.is_empty() {
            for field in [
                &mut s.store_hits,
                &mut s.store_misses,
                &mut s.store_demotes,
                &mut s.store_promotes,
                &mut s.store_records,
                &mut s.store_bytes,
                &mut s.store_segments,
                &mut s.store_write_errors,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        // the v4 connection tail is absent in v2/v3 bodies; absence
        // decodes as zeros (a server predating connection accounting)
        if !buf.is_empty() {
            for field in [
                &mut s.conns_open,
                &mut s.conns_accepted,
                &mut s.accept_eagain,
                &mut s.idle_timeouts,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        Ok(s)
    }

    /// Folds another node's snapshot into this one: the fleet view
    /// `dpc cluster-stats` renders. Counters and gauges sum (gauges
    /// like `cache_entries` or `store_records` become fleet totals),
    /// latency histograms add bucket-wise, and per-scheme rows merge
    /// by scheme id — a scheme registered on only some nodes still
    /// gets one row.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        self.certify += other.certify;
        self.check += other.check;
        self.gen += other.gen;
        self.soundness += other.soundness;
        self.stats += other.stats;
        self.errors += other.errors;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_entries += other.cache_entries;
        self.cache_bytes += other.cache_bytes;
        self.batches += other.batches;
        self.batched_certifies += other.batched_certifies;
        self.proves += other.proves;
        self.latency.absorb(&other.latency);
        for row in &other.per_scheme {
            match self.per_scheme.iter_mut().find(|r| r.id == row.id) {
                Some(mine) => mine.absorb(row),
                None => self.per_scheme.push(row.clone()),
            }
        }
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.store_demotes += other.store_demotes;
        self.store_promotes += other.store_promotes;
        self.store_records += other.store_records;
        self.store_bytes += other.store_bytes;
        self.store_segments += other.store_segments;
        self.store_write_errors += other.store_write_errors;
        self.conns_open += other.conns_open;
        self.conns_accepted += other.conns_accepted;
        self.accept_eagain += other.accept_eagain;
        self.idle_timeouts += other.idle_timeouts;
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} (certify {}, check {}, gen {}, soundness {}, stats {}, errors {})",
            self.requests_total(),
            self.certify,
            self.check,
            self.gen,
            self.soundness,
            self.stats,
            self.errors,
        )?;
        writeln!(
            f,
            "cache: {} hits, {} misses, {} evictions, {} entries, {} bytes",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_entries,
            self.cache_bytes,
        )?;
        if self.store_segments > 0 {
            writeln!(
                f,
                "store: {} records, {} bytes, {} segments; cold hits {}, \
                 cold misses {}, demotions {}, promotions {}{}",
                self.store_records,
                self.store_bytes,
                self.store_segments,
                self.store_hits,
                self.store_misses,
                self.store_demotes,
                self.store_promotes,
                if self.store_write_errors > 0 {
                    format!(
                        " (WARNING: {} write-behind failures — that many \
                         certificates are not persisted)",
                        self.store_write_errors
                    )
                } else {
                    String::new()
                },
            )?;
        }
        if self.conns_accepted > 0 || self.conns_open > 0 {
            writeln!(
                f,
                "connections: {} open, {} accepted, {} accept retries, {} idle-timeouts",
                self.conns_open, self.conns_accepted, self.accept_eagain, self.idle_timeouts,
            )?;
        }
        writeln!(
            f,
            "prover: {} executions; batching: {} batches covering {} requests",
            self.proves, self.batches, self.batched_certifies,
        )?;
        write!(
            f,
            "latency: {} samples, p50 {} us, p99 {} us",
            self.latency.count(),
            self.latency.p50_us(),
            self.latency.p99_us(),
        )?;
        for s in &self.per_scheme {
            write!(
                f,
                "\nscheme {:>3} {:<18} {} certifies, {} hits, {} misses, {} proves, p50 {} us",
                s.id,
                s.name,
                s.certify,
                s.hits,
                s.misses,
                s.proves,
                s.latency.p50_us(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(2));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2, "[0, 2) us");
        assert_eq!(s.buckets[1], 2, "[2, 4) us");
        assert_eq!(s.buckets[9], 1, "[512, 1024) us");
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn quantiles_are_bucket_lower_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let s = h.snapshot();
        assert_eq!(s.p50_us(), 64);
        assert_eq!(s.p99_us(), 64);
        assert_eq!(s.quantile_us(1.0), 1 << 16);
        assert_eq!(HistogramSnapshot::default().p50_us(), 0);
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        let snapshot = StatsSnapshot {
            certify: 10,
            cache_hits: 9,
            cache_bytes: 1 << 30,
            latency: h.snapshot(),
            per_scheme: vec![
                SchemeStats {
                    id: 0,
                    name: "planarity".into(),
                    certify: 7,
                    hits: 5,
                    misses: 2,
                    proves: 2,
                    latency: h.snapshot(),
                },
                SchemeStats {
                    id: 8,
                    name: "mod-counter".into(),
                    certify: 3,
                    ..SchemeStats::default()
                },
            ],
            store_hits: 11,
            store_misses: 4,
            store_demotes: 2,
            store_promotes: 9,
            store_records: 40,
            store_bytes: 1 << 16,
            store_segments: 2,
            store_write_errors: 1,
            conns_open: 3,
            conns_accepted: 12,
            accept_eagain: 5,
            idle_timeouts: 1,
            ..Default::default()
        };
        let mut buf = Vec::new();
        snapshot.encode_into(&mut buf);
        let mut cursor = buf.as_slice();
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, snapshot);
        assert_eq!(back.scheme("mod-counter").unwrap().certify, 3);
        assert!(back.scheme("nosuch").is_none());
        let text = format!("{back}");
        assert!(text.contains("planarity"), "{text}");
        assert!(text.contains("mod-counter"), "{text}");
        assert!(text.contains("demotions 2"), "{text}");
        assert!(text.contains("1 write-behind failure"), "{text}");
        assert!(
            text.contains("connections: 3 open, 12 accepted, 5 accept retries, 1 idle-timeouts"),
            "{text}"
        );
    }

    #[test]
    fn v2_stats_body_decodes_with_zero_store_fields() {
        // a version-2 body is a version-4 body minus the 8 trailing
        // store fields and the 4 trailing connection fields; a v4
        // decoder reads it as "no store attached, no connections seen"
        let v2_like = StatsSnapshot {
            certify: 5,
            cache_hits: 3,
            ..StatsSnapshot::default()
        };
        let mut v4 = Vec::new();
        v2_like.encode_into(&mut v4);
        let v2 = &v4[..v4.len() - 12]; // the 12 tail fields are all 0x00
        let mut cursor = v2;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v2_like);
        assert_eq!(back.store_segments, 0);
        assert_eq!(back.conns_accepted, 0);
        // and the store/connection lines stay out of the rendered text
        assert!(!format!("{back}").contains("store:"));
        assert!(!format!("{back}").contains("connections:"));
    }

    #[test]
    fn v3_stats_body_decodes_with_zero_connection_fields() {
        // a version-3 body is a version-4 body minus the 4 trailing
        // connection fields; the store tail must still land in the
        // store fields, not bleed into the connection fields
        let v3_like = StatsSnapshot {
            certify: 5,
            store_hits: 7,
            store_segments: 2,
            ..StatsSnapshot::default()
        };
        let mut v4 = Vec::new();
        v3_like.encode_into(&mut v4);
        let v3 = &v4[..v4.len() - 4]; // the 4 connection fields are 0x00
        let mut cursor = v3;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v3_like);
        assert_eq!(back.store_hits, 7);
        assert_eq!(back.conns_open, 0);
    }

    #[test]
    fn absorb_folds_two_nodes_into_one_fleet_view() {
        let h1 = LatencyHistogram::new();
        h1.record(Duration::from_micros(3)); // bucket 1
        let h2 = LatencyHistogram::new();
        h2.record(Duration::from_micros(100)); // bucket 6
        let mut a = StatsSnapshot {
            certify: 4,
            cache_hits: 2,
            store_records: 10,
            latency: h1.snapshot(),
            per_scheme: vec![SchemeStats {
                id: 0,
                name: "planarity".into(),
                certify: 4,
                hits: 2,
                misses: 2,
                proves: 2,
                latency: h1.snapshot(),
            }],
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            certify: 3,
            cache_hits: 1,
            store_records: 7,
            latency: h2.snapshot(),
            per_scheme: vec![
                SchemeStats {
                    id: 0,
                    name: "planarity".into(),
                    certify: 2,
                    ..SchemeStats::default()
                },
                SchemeStats {
                    id: 1,
                    name: "bipartite".into(),
                    certify: 1,
                    ..SchemeStats::default()
                },
            ],
            ..StatsSnapshot::default()
        };
        a.absorb(&b);
        assert_eq!(a.certify, 7);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.store_records, 17, "gauges sum to fleet totals");
        assert_eq!(a.latency.count(), 2, "histograms pool observations");
        assert_eq!(a.latency.buckets[1], 1);
        assert_eq!(a.latency.buckets[6], 1);
        // rows merged by id; the scheme present on only one node
        // still shows up
        assert_eq!(a.per_scheme.len(), 2);
        assert_eq!(a.scheme("planarity").unwrap().certify, 6);
        assert_eq!(a.scheme("bipartite").unwrap().certify, 1);
    }

    #[test]
    fn snapshot_decode_bounds_scheme_rows() {
        // a v2-shaped body whose per-scheme row count (its last
        // varint) is a hostile 2^28-1: must be rejected by the row
        // bound, not allocated
        let snapshot = StatsSnapshot::default();
        let mut buf = Vec::new();
        snapshot.encode_into(&mut buf);
        buf.truncate(buf.len() - 12); // drop the v3 store + v4 conn tails
        *buf.last_mut().unwrap() = 0xff;
        buf.extend_from_slice(&[0xff, 0xff, 0x7f]);
        let mut cursor = buf.as_slice();
        assert!(StatsSnapshot::decode_from(&mut cursor).is_err());
    }
}
