//! Long-running certification service for proof-labeling schemes.
//!
//! The paper's pipeline — compute a compact certificate once, verify
//! it cheaply everywhere — maps directly onto a serving architecture:
//! certificates are immutable, content-addressed artifacts. This crate
//! turns the single-shot library into that system, using only
//! `std::net` TCP and `std::thread`:
//!
//! * [`registry`] — the scheme registry: stable [`registry::SchemeId`]
//!   (u16) + name → any registered
//!   [`dpc_core::scheme::ProofLabelingScheme`], with per-scheme
//!   capabilities; planarity is id 0, the wire default;
//! * [`wire`] — the binary protocol: length-prefixed frames, varint
//!   delta-encoded graphs, byte-exact `Assignment`/`Outcome` bodies;
//!   request kinds Certify / Check / Gen / SoundnessProbe / Stats,
//!   each graph-carrying kind addressing a scheme via a
//!   backward-compatible trailing extension (see `docs/WIRE.md`);
//! * [`cache`] — the sharded, content-addressed certificate cache:
//!   `(scheme id, canonical graph)` hash → `Arc`-shared prove result,
//!   lock-striped shards, LRU eviction under a byte budget;
//! * [`store`] — pluggable persistence: the [`store::CertStore`]
//!   trait, the append-only CRC-checked [`store::SegmentStore`] file
//!   tier, and [`store::TieredCache`], which runs the LRU cache as a
//!   hot tier over an optional cold tier (warm restarts, eviction
//!   demotion, write-behind);
//! * [`server`] — accept loop, per-connection reader/writer threads,
//!   and a worker pool that drains a bounded queue, folds concurrent
//!   same-scheme Certify requests into
//!   [`dpc_core::batch::BatchRunner`] batches, and streams responses
//!   back in request order per connection;
//! * [`client`] — a blocking client with request pipelining and one
//!   options-builder call per verb ([`CertifyOptions`] and friends)
//!   instead of a method per wire shape;
//! * [`cluster`] — client-side horizontal scale: a
//!   [`cluster::ClusterClient`] rendezvous-hashes each request's
//!   content key (`uvarint(scheme id)` + canonical graph hash) across
//!   N server addresses and fails over down the ranking when a node
//!   is unreachable — the servers stay share-nothing on the request
//!   path, and with [`ClusterClient::with_replication`] each
//!   certificate is written to the key's top-k ranked nodes, reads
//!   read-repair cold replicas, and `dpc serve --peers` adds a
//!   server-side anti-entropy sweep that streams missing store
//!   records between peers;
//! * [`metrics`] — lock-free counters (global and per scheme), the
//!   power-of-two latency histograms behind the Stats endpoint
//!   (including the per-stage request-trace histograms: read/decode,
//!   queue wait, service, reorder wait, write flush), the capped
//!   slow-request log, and the hand-rolled Prometheus text
//!   exposition (`dpc serve --metrics-addr`);
//! * [`gen`] — the named graph families servable via Gen.
//!
//! # Example: query a server
//!
//! ```
//! use dpc_service::registry::SchemeId;
//! use dpc_service::wire::Response;
//! use dpc_service::{client::Client, server, CertifyOptions};
//!
//! let handle = server::serve("127.0.0.1:0", Default::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let g = dpc_graph::generators::grid(6, 6);
//! // planarity (the default scheme): first query proves ...
//! let first = client.certify(&g, CertifyOptions::new()).unwrap();
//! assert!(matches!(first, Response::Certified { cached: false, .. }));
//! // ... the repeat is a cache hit
//! let second = client.certify(&g, CertifyOptions::new()).unwrap();
//! assert!(matches!(second, Response::Certified { cached: true, .. }));
//! // the same graph under another scheme is *not* a hit: caches are
//! // isolated per scheme id
//! let bip = client
//!     .certify(&g, CertifyOptions::new().scheme(SchemeId::BIPARTITE))
//!     .unwrap();
//! assert!(matches!(bip, Response::Certified { cached: false, .. }));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod gen;
pub mod loadgen;
pub mod metrics;
pub(crate) mod reactor;
pub mod registry;
pub mod server;
pub mod store;
pub mod wire;

pub use cache::{CacheConfig, CertCache};
pub use client::{
    AuditOptions, CertifyOptions, CheckOptions, Client, GenOptions, InteractiveOptions,
    SoundnessOptions,
};
pub use cluster::{ClusterClient, ClusterStats, DistributedReport, Ring};
pub use metrics::{
    prometheus_text, HistogramSnapshot, SlowLogEntry, StageSnapshot, StatsSnapshot, STAGE_NAMES,
};
pub use registry::{SchemeId, SchemeRegistry};
pub use server::{serve, serve_with_registry, ServeConfig, ServerHandle};
pub use store::{CertStore, SegmentConfig, SegmentStore, TieredCache};
pub use wire::{Request, Response, WireError};
