//! Bit-exact encoding for certificates and messages.
//!
//! Certificate size is *the* complexity measure of proof-labeling
//! schemes, so sizes must be measured honestly: this module provides a
//! writer/reader over a bit stream with fixed-width fields and LEB128
//! varints. No padding to byte boundaries is counted.
//!
//! ```
//! use dpc_runtime::bits::{BitWriter, BitReader};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(5, 3);
//! w.write_varint(300);
//! w.write_bool(true);
//! let bits = w.bit_len();
//! let mut r = BitReader::new(w.as_bytes(), bits);
//! assert_eq!(r.read_bits(3).unwrap(), 5);
//! assert_eq!(r.read_varint().unwrap(), 300);
//! assert!(r.read_bool().unwrap());
//! ```

use std::fmt;

/// Error when decoding a bit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Read past the end of the stream.
    OutOfBits,
    /// A varint was longer than 64 bits.
    VarintOverflow,
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::OutOfBits => write!(f, "read past end of bit stream"),
            DecodeError::VarintOverflow => write!(f, "varint longer than 64 bits"),
            DecodeError::BadUtf8 => write!(f, "string is not UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only bit stream writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    len_bits: usize,
}

impl BitWriter {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.len_bits
    }

    /// The backing bytes (last byte possibly partial).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning `(bytes, bit_len)`.
    pub fn into_parts(self) -> (Vec<u8>, usize) {
        (self.buf, self.len_bits)
    }

    /// Writes the `width` low bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64);
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1 == 1;
            self.push_bit(bit);
        }
    }

    /// Writes a single bool as one bit.
    pub fn write_bool(&mut self, b: bool) {
        self.push_bit(b);
    }

    /// Writes an unsigned LEB128 varint (7 bits per group + continuation
    /// bit; small values cost 8 bits).
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let group = value & 0x7f;
            value >>= 7;
            self.write_bool(value != 0);
            self.write_bits(group, 7);
            if value == 0 {
                break;
            }
        }
    }

    /// Appends the whole content of another writer.
    pub fn append(&mut self, other: &BitWriter) {
        let mut r = BitReader::new(other.as_bytes(), other.bit_len());
        for _ in 0..other.bit_len() {
            self.push_bit(r.read_bool().unwrap());
        }
    }

    fn push_bit(&mut self, bit: bool) {
        let byte = self.len_bits / 8;
        if byte == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte] |= 1 << (7 - (self.len_bits % 8));
        }
        self.len_bits += 1;
    }
}

/// Sequential reader over a bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    len_bits: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over `buf` limited to `len_bits` bits.
    pub fn new(buf: &'a [u8], len_bits: usize) -> Self {
        BitReader {
            buf,
            len_bits,
            pos: 0,
        }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Reads `width` bits (most significant first).
    pub fn read_bits(&mut self, width: u32) -> Result<u64, DecodeError> {
        if self.remaining() < width as usize {
            return Err(DecodeError::OutOfBits);
        }
        let mut v = 0u64;
        for _ in 0..width {
            let byte = self.pos / 8;
            let bit = (self.buf[byte] >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Reads one bit.
    pub fn read_bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let more = self.read_bool()?;
            let group = self.read_bits(7)?;
            if shift >= 64 || (shift == 63 && group > 1) {
                return Err(DecodeError::VarintOverflow);
            }
            v |= group << shift;
            shift += 7;
            if !more {
                return Ok(v);
            }
        }
    }
}

/// Number of bits of the varint encoding of `value` (8 bits per 7-bit
/// group) — handy for size predictions in tests.
pub fn varint_len(value: u64) -> usize {
    let groups = (64 - value.leading_zeros()).div_ceil(7).max(1);
    groups as usize * 8
}

// ---------------------------------------------------------------------------
// Byte-oriented varints.
//
// The bit stream above measures certificates honestly (no padding); wire
// protocols and caches instead want byte-aligned buffers that can be
// memcpy'd and Arc-shared. These helpers are the canonical LEB128
// encoding over `Vec<u8>` / `&[u8]`, shared by the certificate
// serializers in `dpc-core` and the service wire codec.

/// Appends `value` as a standard LEB128 varint (low 7 bits per byte,
/// high bit = continuation).
pub fn put_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let group = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(group);
            return;
        }
        out.push(group | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `buf`, advancing it.
pub fn get_uvarint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first().ok_or(DecodeError::OutOfBits)?;
        *buf = rest;
        let group = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && group > 1) {
            return Err(DecodeError::VarintOverflow);
        }
        v |= group << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
}

/// Takes exactly `n` bytes from the front of `buf`, advancing it.
pub fn get_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if buf.len() < n {
        return Err(DecodeError::OutOfBits);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Appends a length-prefixed UTF-8 string: uvarint byte length, then
/// the raw bytes. The one string codec of the wire layer.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decodes a length-prefixed UTF-8 string from the front of `buf`,
/// advancing it. Inverse of [`put_string`]. The announced length is
/// implicitly bounded by the remaining buffer ([`get_bytes`] rejects
/// anything longer), so no separate cap is needed here.
pub fn get_string(buf: &mut &[u8]) -> Result<String, DecodeError> {
    let len = get_uvarint(buf)? as usize;
    if len > buf.len() {
        return Err(DecodeError::OutOfBits);
    }
    let bytes = get_bytes(buf, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_width() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0, 1);
        w.write_bits(u64::MAX, 64);
        let mut r = BitReader::new(w.as_bytes(), w.bit_len());
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_varints() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_varint(v);
        }
        let mut r = BitReader::new(w.as_bytes(), w.bit_len());
        for &v in &values {
            assert_eq!(r.read_varint().unwrap(), v);
        }
    }

    #[test]
    fn varint_sizes() {
        assert_eq!(varint_len(0), 8);
        assert_eq!(varint_len(127), 8);
        assert_eq!(varint_len(128), 16);
        let mut w = BitWriter::new();
        w.write_varint(128);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn out_of_bits_detected() {
        let mut w = BitWriter::new();
        w.write_bits(3, 2);
        let mut r = BitReader::new(w.as_bytes(), w.bit_len());
        assert_eq!(r.read_bits(2).unwrap(), 3);
        assert_eq!(r.read_bits(1), Err(DecodeError::OutOfBits));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_write_panics() {
        let mut w = BitWriter::new();
        w.write_bits(4, 2);
    }

    #[test]
    fn append_concatenates() {
        let mut a = BitWriter::new();
        a.write_bits(0b101, 3);
        let mut b = BitWriter::new();
        b.write_bits(0b01, 2);
        a.append(&b);
        assert_eq!(a.bit_len(), 5);
        let mut r = BitReader::new(a.as_bytes(), 5);
        assert_eq!(r.read_bits(5).unwrap(), 0b10101);
    }

    #[test]
    fn byte_varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut cursor = buf.as_slice();
        for &v in &values {
            assert_eq!(get_uvarint(&mut cursor).unwrap(), v);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn byte_varint_errors() {
        let mut empty: &[u8] = &[];
        assert_eq!(get_uvarint(&mut empty), Err(DecodeError::OutOfBits));
        let mut truncated: &[u8] = &[0x80];
        assert_eq!(get_uvarint(&mut truncated), Err(DecodeError::OutOfBits));
        // 10 continuation groups overflow 64 bits
        let mut long: &[u8] = &[0xff; 10];
        assert_eq!(get_uvarint(&mut long), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn get_bytes_advances() {
        let data = [1u8, 2, 3, 4];
        let mut cursor = data.as_slice();
        assert_eq!(get_bytes(&mut cursor, 3).unwrap(), &[1, 2, 3]);
        assert_eq!(get_bytes(&mut cursor, 2), Err(DecodeError::OutOfBits));
        assert_eq!(get_bytes(&mut cursor, 1).unwrap(), &[4]);
    }

    #[test]
    fn bools_and_bits_interleave() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.write_bool(i % 3 == 0);
            w.write_varint(i * i);
        }
        let mut r = BitReader::new(w.as_bytes(), w.bit_len());
        for i in 0..100u64 {
            assert_eq!(r.read_bool().unwrap(), i % 3 == 0);
            assert_eq!(r.read_varint().unwrap(), i * i);
        }
    }
}
