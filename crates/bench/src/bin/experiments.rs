//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p dpc-bench --release --bin experiments -- all
//!   cargo run -p dpc-bench --release --bin experiments -- e1 e7 e8

use dpc_bench::experiments;
use dpc_runtime::log_error;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::all_ids()
            .into_iter()
            .map(String::from)
            .collect()
    } else {
        args
    };
    for id in &ids {
        if !experiments::run(id) {
            log_error!(
                "experiments",
                "unknown experiment id: {id} (known: {:?})",
                experiments::all_ids()
            );
            std::process::exit(2);
        }
    }
}
