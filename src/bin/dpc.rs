//! `dpc` — command-line front end.
//!
//! Graphs are exchanged in graph6 format (nauty / House of Graphs).
//!
//! ```text
//! dpc check <graph6>        planarity verdict with a certificate
//!                           (faces/genus, or the Kuratowski witness)
//! dpc certify <graph6>      run the Theorem 1 PLS end to end
//! dpc embed <graph6>        print the rotation system and faces
//! dpc kuratowski <graph6>   extract a subdivided K5/K3,3
//! dpc soundness <graph6> [seed]  attack battery on a no-instance
//! dpc gen <family> <n> [seed]   emit a generated graph as graph6
//!                           (families: dpc_service::gen::FAMILIES)
//!
//! dpc schemes               list the scheme registry (ids, classes,
//!                           certificate bounds, capabilities)
//! dpc serve <addr> [workers] [cache-mb] [--schemes a,b,c]
//!           [--store-dir <path>] [--store-budget-bytes <n>]
//!           [--event-loop|--threaded] [--event-loops <n>]
//!           [--prove-threads <n>] [--idle-timeout-ms <n>]
//!           [--metrics-addr <addr>] [--slow-ms <n>] [--audit]
//!                           long-running service (default: all
//!                           schemes, no persistence); with a store
//!                           dir the certificate cache survives
//!                           restarts. The front end defaults to the
//!                           epoll event loop on Linux; --threaded
//!                           restores thread-per-connection.
//!                           --metrics-addr serves Prometheus text
//!                           over plain HTTP GET /metrics; --slow-ms
//!                           sets the slow-request log threshold
//!                           (default 1000, 0 disables); --audit runs
//!                           the randomized store auditor on the
//!                           maintenance thread (re-verifies sampled
//!                           certificates and quarantines records
//!                           whose CRC is valid but whose content no
//!                           longer verifies)
//! dpc store stat|compact|verify <dir>
//!                           offline tools for a --store-dir (do not
//!                           run against a live server)
//! dpc store corrupt <dir>   chaos tool: flip one stored verdict and
//!                           recompute the CRC — `store verify` still
//!                           passes, only the auditor catches it
//! dpc store merge <dst> <src...>
//!                           stream every record of the source stores
//!                           into <dst>, deduplicating by content key
//!                           (rehomes a drained node's certificates)
//! dpc query <addr> certify [--no-cache] [--chunked] [--scheme <name>] <graph6>
//!                           --chunked streams the graph through the
//!                           chunked-upload frames (GraphChunkBegin/
//!                           Chunk/End) instead of one certify frame,
//!                           and answers with the compact summary
//! dpc query <addr> check [--scheme <name>] <graph6>
//! dpc query <addr> gen <family> <n> [seed] [--scheme <name>]
//!                           family "default" routes to the scheme's
//!                           canonical yes-instance generator
//! dpc query <addr> soundness [--scheme <name>] <graph6> [seed]
//! dpc query <addr> interactive <graph6> [seed]
//!                           one full interactive-certification
//!                           session (wire v8): commit locally, open
//!                           the session, answer the server's
//!                           challenge, print the verdict with the
//!                           measured soundness bound
//! dpc query <addr> stats
//!   every query accepts --wait-ms <n> (retry refused connects for n
//!   milliseconds — races with a booting server) and --nodes a,b,c
//!   in place of <addr> (client-side rendezvous routing across a
//!   cluster of servers, with failover; see dpc_service::cluster)
//! dpc cluster-stats --nodes a,b,c
//!                           per-node reachability + Stats, plus the
//!                           fleet-aggregated view
//! dpc audit <addr>|--nodes a,b,c [--samples <n>] [--seed <n>]
//!                           one on-demand audit pass per node: sample
//!                           stored certificates, re-verify them, and
//!                           quarantine (and report) any record whose
//!                           bytes are CRC-valid but no longer verify
//! dpc slowlog <addr>|--nodes a,b,c
//!                           the slow-request log: every request whose
//!                           end-to-end latency crossed the server's
//!                           --slow-ms threshold, with its full
//!                           per-stage breakdown, newest first
//! dpc top <addr>|--nodes a,b,c [--once] [--interval-ms <n>]
//!                           live fleet dashboard from repeated Stats
//!                           polls: per-interval rps, per-stage
//!                           p50/p99, queue depth, connections, cache
//!                           hit ratio; --once prints one frame
//! dpc bench-serve <addr>|self [hits] [side] [--graph grid:RxC|gnm:N:M|tri:N]
//!                           load generator; reports cache-hit vs
//!                           cache-miss latency (plus a
//!                           machine-readable JSON summary line);
//!                           --graph overrides the default grid sizing
//! dpc bench-serve --nodes a,b,c [hits] [side]
//!                           same, but driving the whole ring with
//!                           two owner-selected graphs per node
//! dpc bench-serve --nodes a,b,c --distributed [count]
//!                 [--graph grid:RxC|gnm:N:M|tri:N]
//!                           distributed-proving bench: `count` seeded
//!                           graphs through certify_distributed vs a
//!                           sequential single-connection sweep; the
//!                           two BatchSummary folds must be identical,
//!                           and the JSON reports nodes used, delegated
//!                           proves, merge time, and the speedup
//! dpc bench-serve <addr>|self --connections N[,N...]
//!                 [--requests-per-conn <k>] [--threaded|--event-loop]
//!                           connection-storm mode: hold N concurrent
//!                           connections, pipeline k requests down
//!                           each, report an rps-vs-connections curve
//!                           (one JSON line); `self` spawns the server
//!                           in-process with the chosen front end
//! ```

use dpc::core::harness::run_pls;
use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::{graph6, Graph};
use dpc::planar::kuratowski::extract_kuratowski;
use dpc::planar::lr::{planarity, Planarity};
use dpc::prelude::*;
use dpc_runtime::log_info;
use dpc_service::cache::CacheConfig;
use dpc_service::cluster::ClusterClient;
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::wire::{CheckVerdict, Response};
use dpc_service::{
    AuditOptions, CertifyOptions, CheckOptions, Client, GenOptions, InteractiveOptions,
    SegmentConfig, SegmentStore, ServeConfig, SlowLogEntry, SoundnessOptions, StatsSnapshot,
};
use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match run(&refs) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Dispatches a command line; returns the output text.
fn run(args: &[&str]) -> Result<String, String> {
    match args {
        ["check", s] => check(parse(s)?),
        ["certify", s] => certify(parse(s)?),
        ["embed", s] => embed(parse(s)?),
        ["kuratowski", s] => kuratowski(parse(s)?),
        ["soundness", s, rest @ ..] => {
            let seed: u64 = match rest {
                [] => 1,
                [x] => x.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            soundness(parse(s)?, seed)
        }
        ["gen", family, n, rest @ ..] => {
            let n: u32 = n.parse().map_err(|_| "n must be a number".to_string())?;
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            gen(family, n, seed)
        }
        ["schemes"] => schemes_cmd(),
        ["serve", addr, rest @ ..] => serve_cmd(addr, rest),
        ["store", "merge", dst, srcs @ ..] if !srcs.is_empty() => store_merge_cmd(dst, srcs),
        ["store", sub, dir] => store_cmd(sub, dir),
        ["query", rest @ ..] => query_cmd(rest),
        ["cluster-stats", rest @ ..] => cluster_stats_cmd(rest),
        ["audit", rest @ ..] => audit_cmd(rest),
        ["slowlog", rest @ ..] => slowlog_cmd(rest),
        ["top", rest @ ..] => top_cmd(rest),
        ["bench-serve", rest @ ..] => bench_serve_cmd(rest),
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: dpc check|certify|embed|kuratowski|soundness <graph6>  |  \
     dpc gen <family> <n> [seed]  |  dpc schemes  |  \
     dpc serve <addr> [workers] [cache-mb] [--schemes a,b,c] \
     [--store-dir <path>] [--store-budget-bytes <n>] [--peers a,b,c] \
     [--event-loop|--threaded] [--event-loops <n>] [--prove-threads <n>] \
     [--idle-timeout-ms <n>] [--metrics-addr <addr>] [--slow-ms <n>] [--audit]  |  \
     dpc store stat|compact|verify|corrupt <dir>  |  \
     dpc store merge <dst> <src...>  |  \
     dpc query <addr>|--nodes a,b,c certify|check|gen|soundness|interactive|stats \
     [--chunked] [--scheme <name>] [--wait-ms <n>] [--replication <k>] ...  |  \
     dpc cluster-stats --nodes a,b,c [--wait-ms <n>]  |  \
     dpc audit <addr>|--nodes a,b,c [--samples <n>] [--seed <n>] [--wait-ms <n>]  |  \
     dpc slowlog <addr>|--nodes a,b,c [--wait-ms <n>]  |  \
     dpc top <addr>|--nodes a,b,c [--once] [--interval-ms <n>] [--wait-ms <n>]  |  \
     dpc bench-serve <addr>|self|--nodes a,b,c [hits] [side] \
     [--graph grid:RxC|gnm:N:M|tri:N] [--distributed [count]] \
     [--replication <k>] [--connections N[,N...] [--requests-per-conn <k>] \
     [--threaded|--event-loop]]"
        .to_string()
}

/// Removes `flag value` from `args` wherever it appears; `Ok(None)`
/// when the flag is absent. A repeated flag is an error — silently
/// ignoring the second occurrence would reinterpret it as a
/// positional argument (e.g. a server address).
fn take_flag_value(args: &mut Vec<&str>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|&a| a == flag) else {
        return Ok(None);
    };
    let value = args
        .get(pos + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?
        .to_string();
    args.drain(pos..pos + 2);
    if args.contains(&flag) {
        return Err(format!("{flag} given more than once"));
    }
    Ok(Some(value))
}

/// The shared connection flags of every client-side command.
struct ConnFlags {
    wait: Option<Duration>,
    nodes: Option<Vec<String>>,
    replication: usize,
}

/// Parses the shared connection flags: `--wait-ms <n>` (connect
/// retry window), `--nodes a,b,c` (cluster routing), and
/// `--replication <k>` (copies of each certificate on the top-k
/// ranked nodes; default 2, capped at the ring size, 1 restores
/// single-owner routing). Replication only applies to ring targets.
fn take_conn_flags(args: &mut Vec<&str>) -> Result<ConnFlags, String> {
    let wait = take_flag_value(args, "--wait-ms")?
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| "wait-ms must be a number".to_string())
        })
        .transpose()?;
    let nodes = take_flag_value(args, "--nodes")?
        .map(|csv| csv.split(',').map(str::to_string).collect::<Vec<_>>());
    let replication = take_flag_value(args, "--replication")?
        .map(|v| match v.parse::<usize>() {
            Ok(0) | Err(_) => Err("replication must be a number >= 1".to_string()),
            Ok(k) => Ok(k),
        })
        .transpose()?
        .unwrap_or(2);
    Ok(ConnFlags {
        wait,
        nodes,
        replication,
    })
}

/// Resolves a `--scheme <name>` CLI handle against the standard
/// registry (the server answers with its own error if it registers a
/// smaller set).
fn scheme_by_name(name: &str) -> Result<SchemeId, String> {
    let reg = SchemeRegistry::standard();
    reg.by_name(name)
        .map(|e| e.id)
        .ok_or_else(|| format!("unknown scheme {name:?} (see `dpc schemes`)"))
}

fn schemes_cmd() -> Result<String, String> {
    let reg = SchemeRegistry::standard();
    let mut out = format!(
        "{:>3}  {:<18} {:<44} {:<34} {:<16} {}\n",
        "id", "name", "class", "certificates", "soundness-probe", "needs-ids"
    );
    for e in reg.entries() {
        out.push_str(&format!(
            "{:>3}  {:<18} {:<44} {:<34} {:<16} {}\n",
            e.id,
            e.name,
            e.caps.class,
            e.caps.cert_bound,
            if e.caps.soundness_probe { "yes" } else { "no" },
            if e.caps.needs_ids {
                "yes (binary wire only)"
            } else {
                "no"
            },
        ));
    }
    out.push_str("\nid 0 (planarity) is the wire default: requests without a scheme-id extension route there.\n");
    Ok(out)
}

fn parse(s: &str) -> Result<Graph, String> {
    graph6::decode(s).map_err(|e| format!("bad graph6 input: {e}"))
}

fn check(g: Graph) -> Result<String, String> {
    let mut out = format!(
        "graph: {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    );
    match planarity(&g) {
        Planarity::Planar(rot) => {
            rot.euler_check().map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "PLANAR (certified: {} faces, Euler genus {})\n",
                rot.face_count(),
                rot.genus()
            ));
        }
        Planarity::NonPlanar => {
            let w = extract_kuratowski(&g).ok_or("inconsistent planarity result")?;
            out.push_str(&format!(
                "NOT PLANAR (certified: subdivided {:?} on {} edges, branch nodes {:?})\n",
                w.kind,
                w.edges.len(),
                w.branch_nodes
            ));
        }
    }
    Ok(out)
}

fn certify(g: Graph) -> Result<String, String> {
    if !g.is_connected() {
        return Err("the network must be connected".to_string());
    }
    let scheme = PlanarityScheme::new();
    match run_pls(&scheme, &g) {
        Ok(outcome) => Ok(format!(
            "scheme: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nverdict: {}\n",
            scheme.name(),
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Err(e) => Ok(format!(
            "prover declines: {e}\n(the graph is outside the certified class; by soundness no certificate assignment exists)\n"
        )),
    }
}

fn embed(g: Graph) -> Result<String, String> {
    match planarity(&g) {
        Planarity::Planar(rot) => {
            let mut out = String::new();
            for v in 0..g.node_count() as u32 {
                out.push_str(&format!("rotation({v}): {:?}\n", rot.rotation(v)));
            }
            for (i, f) in rot.faces().iter().enumerate() {
                let cycle: Vec<u32> = f.iter().map(|&(u, _)| u).collect();
                out.push_str(&format!("face {i}: {cycle:?}\n"));
            }
            Ok(out)
        }
        Planarity::NonPlanar => Err("graph is not planar; no embedding".to_string()),
    }
}

fn kuratowski(g: Graph) -> Result<String, String> {
    match extract_kuratowski(&g) {
        Some(w) => {
            let mut out = format!(
                "{:?} subdivision, branch nodes {:?}\n",
                w.kind, w.branch_nodes
            );
            for (u, v) in &w.edges {
                out.push_str(&format!("  {u} -- {v}\n"));
            }
            Ok(out)
        }
        None => Err("graph is planar; no Kuratowski subgraph".to_string()),
    }
}

fn gen(family: &str, n: u32, seed: u64) -> Result<String, String> {
    // the local subcommand has no --scheme flag, so "default" routes
    // to the wire default scheme (planarity)
    let g = dpc_service::gen::make_scheme(family, n, seed, SchemeId::PLANARITY)?;
    Ok(format!("{}\n", graph6::encode(&g)))
}

fn soundness(g: Graph, seed: u64) -> Result<String, String> {
    if !g.is_connected() {
        return Err("the network must be connected".to_string());
    }
    let planar = dpc::planar::lr::is_planar(&g);
    let rows = dpc::core::adversary::soundness_report(&PlanarityScheme::new(), &g, seed);
    let mut out = format!(
        "graph: {} nodes, {} edges ({})\n",
        g.node_count(),
        g.edge_count(),
        if planar {
            "planar — attacks are expected to succeed; soundness only \
             quantifies over no-instances"
        } else {
            "non-planar no-instance"
        }
    );
    let fooled: Vec<&str> = rows
        .iter()
        .filter(|r| r.rejects == Some(0))
        .map(|r| r.attack)
        .collect();
    out.push_str(&soundness_table(
        rows.iter()
            .map(|r| (r.attack.to_string(), r.rejects.map(|x| x as u64))),
    ));
    if !planar {
        if fooled.is_empty() {
            out.push_str("soundness holds for this sample: every applicable attack left at least one rejecting node\n");
        } else {
            out.push_str(&format!(
                "SOUNDNESS VIOLATION: attack(s) {} fooled every node on a no-instance (bug!)\n",
                fooled.join(", ")
            ));
        }
    }
    Ok(out)
}

fn soundness_table(rows: impl Iterator<Item = (String, Option<u64>)>) -> String {
    let mut out = format!("{:<20} {:>10}\n", "attack", "rejects");
    for (attack, rejects) in rows {
        match rejects {
            Some(r) => out.push_str(&format!("{attack:<20} {r:>10}\n")),
            None => out.push_str(&format!("{attack:<20} {:>10}\n", "n/a")),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Service subcommands.

fn serve_cmd(addr: &str, rest: &[&str]) -> Result<String, String> {
    let mut cfg = ServeConfig::default();
    let mut registry = SchemeRegistry::standard();
    let mut store_dir: Option<&str> = None;
    let mut store_budget: Option<u64> = None;
    let mut positional = Vec::new();
    let mut args = rest.iter();
    while let Some(&arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "--schemes" => {
                let list = value("--schemes")?;
                registry = SchemeRegistry::with_schemes(&list.split(',').collect::<Vec<_>>())?;
            }
            "--store-dir" => store_dir = Some(value("--store-dir")?),
            "--peers" => {
                cfg.peers = value("--peers")?
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect();
            }
            "--store-budget-bytes" => {
                store_budget = Some(
                    value("--store-budget-bytes")?
                        .parse()
                        .map_err(|_| "store-budget-bytes must be a number".to_string())?,
                );
            }
            "--event-loop" => cfg.event_loop = true,
            "--threaded" => cfg.event_loop = false,
            "--audit" => cfg.audit = true,
            "--event-loops" => {
                cfg.event_loops = value("--event-loops")?
                    .parse::<usize>()
                    .map_err(|_| "event-loops must be a number".to_string())?
                    .max(1);
            }
            "--prove-threads" => {
                cfg.prove_threads = value("--prove-threads")?
                    .parse::<usize>()
                    .map_err(|_| "prove-threads must be a number".to_string())?
                    .max(1);
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Duration::from_millis(
                    value("--idle-timeout-ms")?
                        .parse()
                        .map_err(|_| "idle-timeout-ms must be a number".to_string())?,
                );
            }
            "--metrics-addr" => cfg.metrics_addr = Some(value("--metrics-addr")?.to_string()),
            "--slow-ms" => {
                cfg.slow_ms = value("--slow-ms")?
                    .parse()
                    .map_err(|_| "slow-ms must be a number".to_string())?;
            }
            flag if flag.starts_with("--") => return Err(usage()),
            p => positional.push(p),
        }
    }
    match positional.as_slice() {
        [] => {}
        [workers] => {
            cfg.workers = workers
                .parse()
                .map_err(|_| "workers must be a number".to_string())?;
        }
        [workers, cache_mb] => {
            cfg.workers = workers
                .parse()
                .map_err(|_| "workers must be a number".to_string())?;
            let mb: usize = cache_mb
                .parse()
                .map_err(|_| "cache-mb must be a number".to_string())?;
            cfg.cache = CacheConfig {
                byte_budget: mb << 20,
                ..CacheConfig::default()
            };
        }
        _ => return Err(usage()),
    }
    match (store_dir, store_budget) {
        (Some(dir), budget) => {
            let mut sc = SegmentConfig::new(dir);
            sc.byte_budget = budget;
            cfg.store = Some(sc);
        }
        (None, Some(_)) => {
            return Err("--store-budget-bytes requires --store-dir".to_string());
        }
        (None, None) => {}
    }
    let handle = dpc_service::serve_with_registry(addr, cfg.clone(), registry)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    log_info!(
        "serve",
        "listening on {} ({}, {} workers, {} prove threads, {} MiB cache, batch {} max, store: {}, schemes: {})",
        handle.addr(),
        if cfg.event_loop && epoll::supported() {
            "event-loop"
        } else {
            "threaded"
        },
        cfg.workers,
        cfg.prove_threads,
        cfg.cache.byte_budget >> 20,
        cfg.batch_max,
        cfg.store
            .as_ref()
            .map(|s| s.dir.display().to_string())
            .unwrap_or_else(|| "none".to_string()),
        handle
            .registry()
            .entries()
            .iter()
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(","),
    );
    if let Some(m) = handle.metrics_addr() {
        log_info!("serve", "metrics on http://{m}/metrics");
    }
    if !cfg.peers.is_empty() {
        log_info!("serve", "anti-entropy peers: {}", cfg.peers.join(","));
    }
    handle.wait();
    Ok(String::new())
}

/// Offline tools over a `--store-dir`: `stat` summarizes, `compact`
/// folds live records into fresh segments, `verify` re-checks every
/// record's CRC and scheme id against the standard registry. Not
/// safe against a concurrently serving store.
fn store_cmd(sub: &str, dir: &str) -> Result<String, String> {
    use dpc_service::store::CertStore;
    // `corrupt` rewrites segment files directly, without going
    // through open (open would scan and then race the rewrite)
    if sub == "corrupt" {
        return store_corrupt_cmd(dir);
    }
    // validate the subcommand before opening: open *creates* a store
    // at `dir`, and a typo (`dpc store merge <dst>` with the sources
    // forgotten, `dpc store bogus <dir>`) must not leave a fresh
    // empty store behind its usage error
    if !matches!(sub, "stat" | "compact" | "verify") {
        return Err(usage());
    }
    let store = SegmentStore::open(SegmentConfig::new(dir))
        .map_err(|e| format!("cannot open store at {dir}: {e}"))?;
    let reg = SchemeRegistry::standard();
    match sub {
        "stat" => {
            let s = store.stats();
            let mut by_scheme: std::collections::BTreeMap<Option<u16>, u64> =
                std::collections::BTreeMap::new();
            for record in store.iter().flatten() {
                *by_scheme.entry(record.scheme_id()).or_default() += 1;
            }
            let mut out = format!(
                "store at {dir}: {} records, {} live bytes, {} file bytes, {} segments\n",
                s.records, s.live_bytes, s.file_bytes, s.segments
            );
            if s.read_errors > 0 {
                out.push_str(&format!(
                    "WARNING: {} unreadable records skipped by the startup scan\n",
                    s.read_errors
                ));
            }
            for (id, count) in by_scheme {
                let name = id
                    .and_then(|id| reg.get(SchemeId(id)).map(|e| e.name))
                    .unwrap_or("<unknown>");
                out.push_str(&format!(
                    "  scheme {:>3} {:<18} {count} records\n",
                    id.map(|i| i.to_string()).unwrap_or_else(|| "?".into()),
                    name,
                ));
            }
            Ok(out)
        }
        "compact" => {
            let (before, after) = store
                .compact()
                .map_err(|e| format!("compaction failed: {e}"))?;
            store.flush().map_err(|e| format!("fsync failed: {e}"))?;
            Ok(format!(
                "compacted {dir}: {before} -> {after} file bytes ({} records live)\n",
                store.len()
            ))
        }
        "verify" => {
            let report = store.verify(&reg);
            if report.problems.is_empty() {
                Ok(format!(
                    "store at {dir} verifies clean: {} records ({} certified, {} declined), {} payload bytes, every CRC and scheme id checked\n",
                    report.records, report.certified, report.declined, report.bytes
                ))
            } else {
                Err(format!(
                    "store at {dir} has {} problem(s):\n  {}",
                    report.problems.len(),
                    report.problems.join("\n  ")
                ))
            }
        }
        _ => Err(usage()),
    }
}

/// Chaos tool behind the auditor's CI smoke: flip one accept verdict
/// inside the first certified record and recompute the frame CRC.
/// The store still passes `dpc store verify` — the lie is semantic,
/// not structural — so only the randomized auditor (`dpc serve
/// --audit`, `dpc audit`) can tell. Never point it at a store you
/// care about.
fn store_corrupt_cmd(dir: &str) -> Result<String, String> {
    use dpc::core::harness::Outcome;
    use dpc::core::scheme::Assignment;
    use dpc_service::store::{crc32, RecordKind, StoreRecord};
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dpcs"))
        .collect();
    segs.sort();
    for seg in segs {
        let bytes =
            std::fs::read(&seg).map_err(|e| format!("cannot read {}: {e}", seg.display()))?;
        if bytes.len() < 8 {
            continue;
        }
        let (magic, mut rest) = bytes.split_at(8);
        let mut rebuilt = magic.to_vec();
        let mut flipped = false;
        while rest.len() >= 8 {
            let total = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            if total < 4 || rest.len() < total + 4 {
                return Err(format!("truncated frame in {}", seg.display()));
            }
            let frame = &rest[..total + 4];
            let body = &rest[4..total];
            rest = &rest[total + 4..];
            let record = StoreRecord::decode_body(body)
                .map_err(|e| format!("undecodable record in {}: {e}", seg.display()))?;
            if record.kind != RecordKind::Certified || flipped {
                rebuilt.extend_from_slice(frame);
                continue;
            }
            flipped = true;
            let mut buf = record.suffix.as_slice();
            let mut outcome = Outcome::decode_from(&mut buf)
                .map_err(|e| format!("undecodable outcome in {}: {e}", seg.display()))?;
            let assignment = Assignment::decode_from(&mut buf)
                .map_err(|e| format!("undecodable assignment in {}: {e}", seg.display()))?;
            outcome.verdicts[0] = false;
            let mut suffix = Vec::new();
            outcome.encode_into(&mut suffix);
            assignment.encode_into(&mut suffix);
            let body = StoreRecord {
                kind: RecordKind::Certified,
                keyed: record.keyed,
                suffix,
            }
            .encode_body();
            rebuilt.extend_from_slice(&(body.len() as u32 + 4).to_le_bytes());
            rebuilt.extend_from_slice(&body);
            rebuilt.extend_from_slice(&crc32(&body).to_le_bytes());
        }
        if flipped {
            std::fs::write(&seg, rebuilt)
                .map_err(|e| format!("cannot rewrite {}: {e}", seg.display()))?;
            return Ok(format!(
                "flipped one verdict in {} and recomputed the frame CRC; \
                 `store verify` still passes, only an audit can tell\n",
                seg.display()
            ));
        }
    }
    Err(format!("no certified record in {dir} to corrupt"))
}

/// A cluster client over `nodes`, with the optional connect-retry
/// window and the replication factor applied (shared by query
/// --nodes, cluster-stats, audit, and bench-serve --nodes).
fn ring_client(
    nodes: Vec<String>,
    wait: Option<Duration>,
    replication: usize,
) -> Result<ClusterClient, String> {
    let cc = ClusterClient::new(nodes)?.with_replication(replication);
    Ok(match wait {
        Some(w) => cc.with_connect_wait(w),
        None => cc,
    })
}

fn connect_wait(addr: &str, wait: Option<Duration>) -> Result<Client, String> {
    match wait {
        Some(w) => Client::connect_with_retry(addr, w),
        None => Client::connect(addr),
    }
    .map_err(|e| format!("cannot connect to {addr}: {e}"))
}

/// Where a client-side command points, resolved uniformly across
/// query / audit / cluster-stats / slowlog / top / bench-serve:
/// `--nodes a,b,c` names a rendezvous ring; otherwise the first
/// remaining positional argument is the single server address. The
/// shared `--wait-ms` (connect retry window) and `--replication`
/// flags ride along, so every subcommand threads them identically
/// instead of hand-rolling its own resolution.
///
/// Strip command-specific flags from `args` *before* calling
/// [`Endpoint::take`] — whatever positional is first when it runs is
/// taken as the address.
struct Endpoint {
    /// `Some` for `--nodes`; `None` means `addr` is set.
    nodes: Option<Vec<String>>,
    /// The positional server address (`None` exactly when `nodes` is
    /// `Some`).
    addr: Option<String>,
    wait: Option<Duration>,
    replication: usize,
}

impl Endpoint {
    /// Resolves the endpoint from `args`, consuming the conn flags
    /// and (without `--nodes`) the leading positional address.
    fn take(args: &mut Vec<&str>) -> Result<Endpoint, String> {
        let ConnFlags {
            wait,
            nodes,
            replication,
        } = take_conn_flags(args)?;
        let addr = match nodes {
            Some(_) => None,
            None => {
                if args.is_empty() {
                    return Err(usage());
                }
                Some(args.remove(0).to_string())
            }
        };
        Ok(Endpoint {
            nodes,
            addr,
            wait,
            replication,
        })
    }

    fn is_ring(&self) -> bool {
        self.nodes.is_some()
    }

    /// Opens the target: one connected client, or a lazy ring client.
    fn open(self) -> Result<Target, String> {
        match self.nodes {
            Some(addrs) => Ok(Target::Ring(Box::new(ring_client(
                addrs,
                self.wait,
                self.replication,
            )?))),
            None => {
                let addr = self.addr.as_deref().ok_or_else(usage)?;
                Ok(Target::Single(connect_wait(addr, self.wait)?))
            }
        }
    }

    /// Opens a ring client whether the nodes came from `--nodes` or a
    /// bare `a,b,c` positional (the `cluster-stats` spelling; a
    /// single comma-free address is just a one-node ring).
    fn open_ring(self) -> Result<ClusterClient, String> {
        let nodes = match (self.nodes, self.addr) {
            (Some(nodes), _) => nodes,
            (None, Some(csv)) => csv.split(',').map(str::to_string).collect(),
            (None, None) => return Err(usage()),
        };
        ring_client(nodes, self.wait, self.replication)
    }
}

/// Where a query goes: one server, or a rendezvous-routed ring of
/// them. The ring speaks the identical wire protocol — only the
/// client-side node choice (and failover) differs. Both arms take
/// the same options structs, so each verb is one two-line match.
enum Target {
    Single(Client),
    Ring(Box<ClusterClient>),
}

impl Target {
    fn certify(
        &mut self,
        g: &Graph,
        opts: CertifyOptions,
    ) -> Result<Response, dpc_service::WireError> {
        match self {
            Target::Single(c) => c.certify(g, opts),
            Target::Ring(cc) => cc.certify(g, opts),
        }
    }

    fn check(&mut self, g: &Graph, opts: CheckOptions) -> Result<Response, dpc_service::WireError> {
        match self {
            Target::Single(c) => c.check(g, opts),
            Target::Ring(cc) => cc.check(g, opts),
        }
    }

    fn gen(
        &mut self,
        family: &str,
        n: u32,
        seed: u64,
        opts: GenOptions,
    ) -> Result<Graph, dpc_service::WireError> {
        match self {
            Target::Single(c) => c.gen(family, n, seed, opts),
            Target::Ring(cc) => cc.gen(family, n, seed, opts),
        }
    }

    fn soundness(
        &mut self,
        g: &Graph,
        opts: SoundnessOptions,
    ) -> Result<Response, dpc_service::WireError> {
        match self {
            Target::Single(c) => c.soundness(g, opts),
            Target::Ring(cc) => cc.soundness(g, opts),
        }
    }

    fn interactive(
        &mut self,
        g: &Graph,
        opts: InteractiveOptions,
    ) -> Result<Response, dpc_service::WireError> {
        match self {
            Target::Single(c) => c.interactive(g, opts),
            Target::Ring(cc) => cc.interactive(g, opts),
        }
    }

    fn stats_text(&mut self) -> Result<String, String> {
        match self {
            Target::Single(c) => {
                let stats = c.stats().map_err(|e| e.to_string())?;
                Ok(format!("{stats}\n"))
            }
            Target::Ring(cc) => render_fleet(cc),
        }
    }

    /// One labeled Stats poll per node (`None` = unreachable), used
    /// by `dpc top` to diff consecutive polls. A single server errors
    /// hard instead — there is nothing to keep watching.
    fn stats_all(&mut self) -> Result<Vec<(String, Option<StatsSnapshot>)>, String> {
        match self {
            Target::Single(c) => {
                let s = c.stats().map_err(|e| e.to_string())?;
                Ok(vec![("server".to_string(), Some(s))])
            }
            Target::Ring(cc) => Ok(cc
                .node_stats()
                .into_iter()
                .map(|(addr, result)| (addr, result.ok()))
                .collect()),
        }
    }
}

/// The per-node + fleet-aggregated Stats view of a ring.
fn render_fleet(cc: &mut ClusterClient) -> Result<String, String> {
    let (fleet, per_node) = cc.fleet_stats().map_err(|e| e.to_string())?;
    let mut out = String::new();
    let mut up = 0usize;
    for (addr, result) in &per_node {
        match result {
            Ok(s) => {
                up += 1;
                out.push_str(&format!(
                    "node {addr}: up — {} requests (certify {}), {} cache hits, {} proves, {} store records, repl {} absorbed / {} pushed / {} sweeps\n",
                    s.requests_total(),
                    s.certify,
                    s.cache_hits,
                    s.proves,
                    s.store_records,
                    s.repl_push_merged,
                    s.repl_pushed,
                    s.repl_sweeps,
                ));
            }
            Err(e) => out.push_str(&format!("node {addr}: DOWN ({e})\n")),
        }
    }
    out.push_str(&format!(
        "fleet ({up}/{} nodes up):\n{fleet}\n",
        per_node.len()
    ));
    Ok(out)
}

fn cluster_stats_cmd(rest: &[&str]) -> Result<String, String> {
    let mut args: Vec<&str> = rest.to_vec();
    // a bare csv positional works too: `dpc cluster-stats a,b,c`
    let endpoint = Endpoint::take(&mut args)?;
    if !args.is_empty() {
        return Err(usage());
    }
    let mut cc = endpoint.open_ring()?;
    render_fleet(&mut cc)
}

/// One on-demand audit pass per node: the same randomized sweep
/// `dpc serve --audit` runs in the background, with the caller's
/// sizing and seed — so a reported verdict can be reproduced exactly
/// by rerunning with the same flags.
fn audit_cmd(rest: &[&str]) -> Result<String, String> {
    let mut args: Vec<&str> = rest.to_vec();
    let samples = take_flag_value(&mut args, "--samples")?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| "samples must be a number".to_string())
        })
        .transpose()?
        .unwrap_or(64);
    let seed = take_flag_value(&mut args, "--seed")?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| "seed must be a number".to_string())
        })
        .transpose()?
        .unwrap_or(0);
    let endpoint = Endpoint::take(&mut args)?;
    if !args.is_empty() {
        return Err(usage());
    }
    let opts = AuditOptions::new().samples(samples).seed(seed);
    let render = |sampled: u64, failed: u64, quarantined: u64| {
        format!(
            "{sampled} sampled, {failed} failed verification, {quarantined} quarantined{}",
            if failed > 0 {
                " — quarantined certificates re-prove on their next query"
            } else {
                ""
            }
        )
    };
    if endpoint.is_ring() {
        let mut cc = endpoint.open_ring()?;
        let mut out = String::new();
        let (mut sampled, mut failed, mut quarantined, mut down) = (0u64, 0u64, 0u64, 0usize);
        let reports = cc.node_audits(opts);
        let total = reports.len();
        for (addr, result) in reports {
            match result {
                Ok(Response::AuditReport {
                    sampled: s,
                    failed: f,
                    quarantined: q,
                }) => {
                    sampled += s;
                    failed += f;
                    quarantined += q;
                    out.push_str(&format!("node {addr}: {}\n", render(s, f, q)));
                }
                Ok(Response::Error(e)) => {
                    down += 1;
                    out.push_str(&format!("node {addr}: ERROR ({e})\n"));
                }
                Ok(other) => return Err(format!("unexpected response to Audit: {other:?}")),
                Err(e) => {
                    down += 1;
                    out.push_str(&format!("node {addr}: DOWN ({e})\n"));
                }
            }
        }
        out.push_str(&format!(
            "fleet ({}/{total} nodes audited): {}\n",
            total - down,
            render(sampled, failed, quarantined),
        ));
        return Ok(out);
    }
    let addr = endpoint.addr.clone().ok_or_else(usage)?;
    let mut c = connect_wait(&addr, endpoint.wait)?;
    match c.audit(opts).map_err(|e| e.to_string())? {
        Response::AuditReport {
            sampled,
            failed,
            quarantined,
        } => Ok(format!("audit: {}\n", render(sampled, failed, quarantined))),
        Response::Error(e) => Err(e),
        other => Err(format!("unexpected response to Audit: {other:?}")),
    }
}

/// One slow-log table (shared by the single-server and per-node
/// views): newest first, one row per slow request with its full
/// stage breakdown.
fn render_slowlog(entries: &[SlowLogEntry]) -> String {
    if entries.is_empty() {
        return "slow log is empty (no request crossed the server's --slow-ms threshold)\n"
            .to_string();
    }
    let mut out = format!(
        "{:<18} {:<10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "trace",
        "kind",
        "scheme",
        "age_ms",
        "total_us",
        "decode",
        "queue",
        "service",
        "reorder",
        "write",
    );
    for e in entries {
        out.push_str(&format!(
            "{:<18} {:<10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            format!("{:#x}", e.trace_id),
            e.kind_name(),
            e.scheme,
            e.age_us / 1000,
            e.total_us,
            e.read_decode_us,
            e.queue_wait_us,
            e.service_us,
            e.reorder_wait_us,
            e.write_flush_us,
        ));
    }
    out
}

fn slowlog_cmd(rest: &[&str]) -> Result<String, String> {
    let mut args: Vec<&str> = rest.to_vec();
    let endpoint = Endpoint::take(&mut args)?;
    if !args.is_empty() {
        return Err(usage());
    }
    match endpoint.open()? {
        Target::Ring(mut cc) => {
            let mut out = String::new();
            for (addr, result) in cc.node_slowlog() {
                match result {
                    Ok(entries) => {
                        out.push_str(&format!("node {addr}: {} slow request(s)\n", entries.len()));
                        out.push_str(&render_slowlog(&entries));
                    }
                    Err(e) => out.push_str(&format!("node {addr}: DOWN ({e})\n")),
                }
            }
            Ok(out)
        }
        Target::Single(mut client) => {
            let entries = client.slowlog().map_err(|e| e.to_string())?;
            Ok(render_slowlog(&entries))
        }
    }
}

/// One `dpc top` frame: what happened between two Stats polls
/// `dt` seconds apart — request rate, per-stage latency of exactly
/// the interval's traffic (histogram subtraction), live queue depth,
/// connections, and the interval's cache hit ratio.
fn render_top_frame(label: &str, prev: &StatsSnapshot, cur: &StatsSnapshot, dt: f64) -> String {
    let requests = cur.requests_total().saturating_sub(prev.requests_total());
    let hits = cur.cache_hits.saturating_sub(prev.cache_hits);
    let misses = cur.cache_misses.saturating_sub(prev.cache_misses);
    let lookups = hits + misses;
    let latency = cur.latency.diff(&prev.latency);
    let mut out = format!(
        "{label}: {:.0} req/s, latency p50 {} us p99 {} us, queue {}, conns {}, hit ratio {}\n",
        requests as f64 / dt.max(1e-9),
        latency.p50_us(),
        latency.p99_us(),
        cur.queue_depth,
        cur.conns_open,
        if lookups == 0 {
            "n/a".to_string()
        } else {
            format!("{:.0}%", hits as f64 * 100.0 / lookups as f64)
        },
    );
    let stages = cur.stages.diff(&prev.stages);
    for (name, h) in stages.named() {
        if h.count() == 0 {
            continue;
        }
        out.push_str(&format!(
            "  stage {name:<12} {:>8} samples, p50 {:>7} us, p99 {:>7} us\n",
            h.count(),
            h.p50_us(),
            h.p99_us(),
        ));
    }
    out
}

/// Polls Stats and renders interval deltas. With `--once`, prints a
/// single frame (two polls, one interval) and exits — made for CI
/// smoke steps; otherwise frames stream until the process is killed.
fn top_cmd(rest: &[&str]) -> Result<String, String> {
    let mut args: Vec<&str> = rest.to_vec();
    let once = args.contains(&"--once");
    args.retain(|&a| a != "--once");
    let interval = take_flag_value(&mut args, "--interval-ms")?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| "interval-ms must be a number".to_string())
        })
        .transpose()?
        .unwrap_or(1000)
        .max(1);
    let interval = Duration::from_millis(interval);
    let endpoint = Endpoint::take(&mut args)?;
    if !args.is_empty() {
        return Err(usage());
    }
    let mut target = endpoint.open()?;
    let mut prev = target.stats_all()?;
    let mut prev_at = Instant::now();
    loop {
        std::thread::sleep(interval);
        let cur = target.stats_all()?;
        let now = Instant::now();
        let dt = now.duration_since(prev_at).as_secs_f64();
        let mut frame = String::new();
        for (label, cur_snap) in &cur {
            match prev.iter().find(|(l, _)| l == label) {
                Some((_, Some(prev_snap))) => {
                    if let Some(cur_snap) = cur_snap {
                        frame.push_str(&render_top_frame(label, prev_snap, cur_snap, dt));
                    } else {
                        frame.push_str(&format!("{label}: DOWN\n"));
                    }
                }
                _ => frame.push_str(&format!(
                    "{label}: {}\n",
                    if cur_snap.is_some() {
                        "warming up"
                    } else {
                        "DOWN"
                    }
                )),
            }
        }
        if once {
            return Ok(frame);
        }
        println!("{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = cur;
        prev_at = now;
    }
}

/// Offline union of segment stores: streams every record of each
/// source into `dst`, deduplicating by content key. Like the other
/// `dpc store` tools, not safe against a concurrently serving store.
fn store_merge_cmd(dst: &str, srcs: &[&str]) -> Result<String, String> {
    use dpc_service::store::CertStore;
    // a mistyped destination must not silently become a brand-new
    // store holding the merged records while the real one stays empty
    if !std::path::Path::new(dst).is_dir() {
        return Err(format!(
            "destination store {dst} does not exist (mkdir it first to merge into a fresh store)"
        ));
    }
    for src in srcs {
        if !std::path::Path::new(src).is_dir() {
            return Err(format!("source store {src} does not exist"));
        }
    }
    let dst_store = SegmentStore::open(SegmentConfig::new(dst))
        .map_err(|e| format!("cannot open store at {dst}: {e}"))?;
    let dst_canon = std::fs::canonicalize(dst).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for src in srcs {
        if std::fs::canonicalize(src).map_err(|e| e.to_string())? == dst_canon {
            return Err(format!("cannot merge store {src} into itself"));
        }
        let src_store = SegmentStore::open(SegmentConfig::new(src))
            .map_err(|e| format!("cannot open store at {src}: {e}"))?;
        let report = dst_store
            .merge_from(&src_store)
            .map_err(|e| format!("merge from {src} failed: {e}"))?;
        out.push_str(&format!(
            "merged {src}: {} records scanned, {} new, {} duplicates skipped{}\n",
            report.scanned,
            report.merged,
            report.duplicates,
            if report.source_errors > 0 {
                format!(
                    " (WARNING: {} unreadable source records)",
                    report.source_errors
                )
            } else {
                String::new()
            },
        ));
    }
    dst_store
        .flush()
        .map_err(|e| format!("fsync failed: {e}"))?;
    out.push_str(&format!(
        "store at {dst}: now {} records, {} live bytes\n",
        dst_store.len(),
        dst_store.bytes()
    ));
    Ok(out)
}

fn query_cmd(rest: &[&str]) -> Result<String, String> {
    // flags may appear anywhere: `--scheme <name>` on any
    // graph-carrying query, the shared connection flags on all of
    // them; strip them here so the match below stays flat
    let mut args: Vec<&str> = rest.to_vec();
    let mut scheme = SchemeId::PLANARITY;
    let mut scheme_name = "planarity".to_string();
    if let Some(name) = take_flag_value(&mut args, "--scheme")? {
        scheme = scheme_by_name(&name)?;
        scheme_name = name;
    }
    let chunked = args.contains(&"--chunked");
    args.retain(|&a| a != "--chunked");
    let endpoint = Endpoint::take(&mut args)?;
    if chunked && endpoint.is_ring() {
        // a chunk session lives on one connection; rendezvous routing
        // would need the graph key, which requires the whole graph
        // anyway — query the owner directly instead
        return Err("--chunked streams to a single server (drop --nodes)".to_string());
    }
    // id-reading schemes cannot travel through this subcommand's
    // graph exchange format — inbound (certify/check/soundness parse
    // graph6, which has no id field) or outbound (gen prints graph6,
    // which would silently drop the load-bearing ids): fail fast,
    // before touching the network
    let needs_ids = SchemeRegistry::standard()
        .get(scheme)
        .is_some_and(|e| e.caps.needs_ids);
    if needs_ids
        && matches!(
            args.first(),
            Some(&"certify") | Some(&"check") | Some(&"soundness") | Some(&"gen")
        )
    {
        return Err(format!(
            "scheme {scheme_name} reads network identifiers, which graph6 cannot carry \
             (encoding a graph drops its ids) — use the binary wire protocol instead \
             (dpc_service::Client::certify with CertifyOptions, or the `blocks` family \
             in crates/service/tests/registry_e2e.rs)"
        ));
    }
    let certify_opts = |bypass: bool| {
        let opts = CertifyOptions::new().scheme(scheme);
        let opts = if bypass { opts.bypass() } else { opts };
        if chunked {
            opts.chunked(dpc_service::wire::DEFAULT_CHUNK_BYTES)
        } else {
            opts
        }
    };
    let mut target = endpoint.open()?;
    let response = match args.as_slice() {
        ["certify", s] => target.certify(&parse(s)?, certify_opts(false)),
        ["certify", "--no-cache", s] => target.certify(&parse(s)?, certify_opts(true)),
        _ if chunked => return Err("--chunked only applies to certify".to_string()),
        ["check", s] => target.check(&parse(s)?, CheckOptions::new().scheme(scheme)),
        ["gen", family, n, rest @ ..] => {
            let n: u32 = n.parse().map_err(|_| "n must be a number".to_string())?;
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            let g = target
                .gen(family, n, seed, GenOptions::new().scheme(scheme))
                .map_err(|e| e.to_string())?;
            return Ok(format!("{}\n", graph6::encode(&g)));
        }
        ["soundness", s, rest @ ..] => {
            let seed: u64 = match rest {
                [] => 1,
                [x] => x.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            target.soundness(
                &parse(s)?,
                SoundnessOptions::new().seed(seed).scheme(scheme),
            )
        }
        ["interactive", s, rest @ ..] => {
            let seed: u64 = match rest {
                [] => 1,
                [x] => x.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            target.interactive(
                &parse(s)?,
                InteractiveOptions::new().seed(seed).scheme(scheme),
            )
        }
        ["stats"] => return target.stats_text(),
        _ => return Err(usage()),
    };
    render_response(response.map_err(|e| e.to_string())?, &scheme_name)
}

fn render_response(resp: Response, scheme: &str) -> Result<String, String> {
    match resp {
        Response::Error(e) => Err(e),
        Response::Certified {
            cached,
            outcome,
            assignment,
        } => Ok(format!(
            "scheme: {scheme}\ncache: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nassignment: {} certificates, {} bytes\nverdict: {}\n",
            if cached { "hit" } else { "miss" },
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            assignment.certs.len(),
            assignment.byte_size(),
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Response::CertifiedSummary { cached, outcome } => Ok(format!(
            "scheme: {scheme}\ncache: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nverdict: {}\n",
            if cached { "hit" } else { "miss" },
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Response::Declined { cached, reason } => Ok(format!(
            "prover declines ({}): {reason}\n(the graph is outside the certified class; by soundness no certificate assignment exists)\n",
            if cached { "cached" } else { "fresh" },
        )),
        Response::Checked(CheckVerdict::Planar { faces, genus }) => Ok(format!(
            "PLANAR (certified: {faces} faces, Euler genus {genus})\n"
        )),
        Response::Checked(CheckVerdict::NonPlanar {
            k5,
            branch_nodes,
            witness_edges,
        }) => Ok(format!(
            "NOT PLANAR (certified: subdivided {} on {witness_edges} edges, branch nodes {branch_nodes:?})\n",
            if k5 { "K5" } else { "K33" },
        )),
        Response::Checked(CheckVerdict::Member { scheme }) => {
            Ok(format!("IN CLASS ({scheme}: the honest prover certifies this instance)\n"))
        }
        Response::Checked(CheckVerdict::NonMember { scheme, reason }) => {
            Ok(format!("NOT IN CLASS ({scheme}): {reason}\n"))
        }
        Response::Generated(g) => Ok(format!("{}\n", graph6::encode(&g))),
        Response::Soundness(rows) => Ok(soundness_table(
            rows.into_iter().map(|r| (r.attack, r.rejects)),
        )),
        Response::Stats(s) => Ok(format!("{s}\n")),
        Response::SlowLog(entries) => Ok(render_slowlog(&entries)),
        // maintenance kinds: no query subcommand issues these, but a
        // response renderer must stay total
        Response::StoreKeys(keys) => Ok(format!("{} store keys\n", keys.len())),
        Response::StorePushed { merged, duplicates } => Ok(format!(
            "store push: {merged} merged, {duplicates} duplicates\n"
        )),
        // the chunked-upload client consumes every per-chunk ack
        // itself; one leaking through to the renderer is a bug worth
        // printing, not panicking over
        Response::ChunkAck { session, received } => Ok(format!(
            "chunk ack: session {session:#x}, {received} frame(s) received\n"
        )),
        // the interactive client consumes the challenge itself; one
        // reaching the renderer means the session desynchronized
        Response::Challenge { session, challenge } => Ok(format!(
            "interactive challenge: session {session:#x}, challenge {challenge:#x}\n"
        )),
        Response::Verdict {
            session,
            challenge,
            accept,
            reject_count,
            nodes,
            max_commit_bits,
            max_response_bits,
            soundness_ppm,
        } => Ok(format!(
            "scheme: {scheme}\nsession: {session:#x}\nchallenge: {challenge:#x}\nverdict: {}\ncommit: {max_commit_bits} bits/node, response: {max_response_bits} bits/node ({nodes} nodes)\nsoundness: a forged proof survives one challenge w.p. <= {soundness_ppm}/1000000 ({:.4})\n",
            if accept {
                "all nodes accept".to_string()
            } else {
                format!("{reject_count} nodes reject")
            },
            soundness_ppm as f64 / 1e6,
        )),
        Response::AuditReport {
            sampled,
            failed,
            quarantined,
        } => Ok(format!(
            "audit: {sampled} sampled, {failed} failed verification, {quarantined} quarantined\n"
        )),
    }
}

/// A `--graph` sizing spec for the benches: `grid:RxC` (one
/// deterministic planar graph), `gnm:N:M` (seeded connected
/// `G(n, m)` — a fresh graph per seed, usually non-planar well below
/// `m = 3n - 6`), or `tri:N` (seeded planar triangulation — a fresh
/// provable graph per seed, what the distributed bench wants).
#[derive(Clone, Copy)]
enum GraphSpec {
    Grid(u32, u32),
    Gnm(u32, u32),
    Tri(u32),
}

impl GraphSpec {
    fn parse(s: &str) -> Result<GraphSpec, String> {
        let bad = || format!("bad --graph {s:?} (want grid:RxC, gnm:N:M, or tri:N)");
        if let Some(n) = s.strip_prefix("tri:") {
            let n = n.parse::<u32>().map_err(|_| bad())?;
            if n < 3 {
                return Err(format!("--graph tri:{n} needs n >= 3"));
            }
            return Ok(GraphSpec::Tri(n));
        }
        if let Some(dims) = s.strip_prefix("grid:") {
            let (r, c) = dims.split_once('x').ok_or_else(bad)?;
            let (r, c) = (
                r.parse::<u32>().map_err(|_| bad())?,
                c.parse::<u32>().map_err(|_| bad())?,
            );
            if r == 0 || c == 0 {
                return Err(bad());
            }
            return Ok(GraphSpec::Grid(r, c));
        }
        if let Some(dims) = s.strip_prefix("gnm:") {
            let (n, m) = dims.split_once(':').ok_or_else(bad)?;
            let (n, m) = (
                n.parse::<u32>().map_err(|_| bad())?,
                m.parse::<u32>().map_err(|_| bad())?,
            );
            // gnm_connected asserts these; fail with a usage error
            // instead of a panic
            if n < 2 || m + 1 < n || m as u64 > n as u64 * (n as u64 - 1) / 2 {
                return Err(format!(
                    "--graph gnm:{n}:{m} needs 2 <= n, n-1 <= m <= n(n-1)/2"
                ));
            }
            return Ok(GraphSpec::Gnm(n, m));
        }
        Err(bad())
    }

    fn make(&self, seed: u64) -> Graph {
        match *self {
            GraphSpec::Grid(r, c) => dpc::graph::generators::grid(r, c),
            GraphSpec::Gnm(n, m) => dpc::graph::generators::gnm_connected(n, m, seed),
            GraphSpec::Tri(n) => dpc::graph::generators::stacked_triangulation(n, seed),
        }
    }

    fn label(&self) -> String {
        match *self {
            GraphSpec::Grid(r, c) => format!("grid({r},{c})"),
            GraphSpec::Gnm(n, m) => format!("gnm({n},{m})"),
            GraphSpec::Tri(n) => format!("tri({n})"),
        }
    }
}

fn bench_serve_cmd(rest: &[&str]) -> Result<String, String> {
    let mut args: Vec<&str> = rest.to_vec();
    let graph_spec = take_flag_value(&mut args, "--graph")?
        .map(|s| GraphSpec::parse(&s))
        .transpose()?;
    let distributed = args.contains(&"--distributed");
    args.retain(|&a| a != "--distributed");
    let connections = take_flag_value(&mut args, "--connections")?;
    let per_conn = take_flag_value(&mut args, "--requests-per-conn")?
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| "requests-per-conn must be a number".to_string())
        })
        .transpose()?
        .unwrap_or(4)
        .max(1);
    let threaded = args.contains(&"--threaded");
    let mode_flagged = threaded || args.contains(&"--event-loop");
    args.retain(|&a| a != "--threaded" && a != "--event-loop");
    let endpoint = if distributed && !args.iter().any(|a| !a.starts_with("--")) {
        // --distributed may legally arrive with no positional at all
        // (count defaults); resolve flags only, then demand the ring
        let ConnFlags {
            wait,
            nodes,
            replication,
        } = take_conn_flags(&mut args)?;
        Endpoint {
            nodes,
            addr: None,
            wait,
            replication,
        }
    } else {
        Endpoint::take(&mut args)?
    };
    if let Some(csv) = connections {
        if endpoint.is_ring() {
            return Err("--connections drives a single server, not --nodes".to_string());
        }
        if !args.is_empty() {
            return Err(usage());
        }
        let addr = endpoint.addr.clone().ok_or_else(usage)?;
        let counts: Vec<usize> = csv
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad connection count {t:?}"))
            })
            .collect::<Result<_, _>>()?;
        return bench_storm(
            &addr,
            &counts,
            per_conn,
            threaded,
            mode_flagged,
            endpoint.wait,
        );
    }
    if distributed {
        if !endpoint.is_ring() {
            return Err("--distributed drives a ring: give --nodes a,b,c".to_string());
        }
        let count = match args.as_slice() {
            [] => 12usize,
            [c] => c
                .parse()
                .map_err(|_| "count must be a number".to_string())?,
            _ => return Err(usage()),
        };
        return bench_distributed(endpoint, count.max(1), graph_spec);
    }
    let (hits, side) = match args.as_slice() {
        [] => (32usize, 100u32),
        [hits] => (
            hits.parse()
                .map_err(|_| "hits must be a number".to_string())?,
            100,
        ),
        [hits, side] => (
            hits.parse()
                .map_err(|_| "hits must be a number".to_string())?,
            side.parse()
                .map_err(|_| "side must be a number".to_string())?,
        ),
        _ => return Err(usage()),
    };
    // at least one sample on each side, or the percentiles (and the
    // reported speedup) would be fabricated from zero measurements
    let hits = hits.max(1);
    if endpoint.is_ring() {
        if graph_spec.is_some() {
            // the ring bench picks its graphs BY OWNER (two per
            // node); a fixed spec would defeat that selection
            return Err(
                "--graph applies to the single-server and --distributed benches".to_string(),
            );
        }
        bench_ring(endpoint, hits, side)
    } else {
        let addr = endpoint.addr.clone().ok_or_else(usage)?;
        bench_single(&addr, hits, side, graph_spec, endpoint.wait)
    }
}

fn bench_single(
    addr: &str,
    hits: usize,
    side: u32,
    spec: Option<GraphSpec>,
    wait: Option<Duration>,
) -> Result<String, String> {
    let own_server = if addr == "self" {
        Some(
            dpc_service::serve("127.0.0.1:0", ServeConfig::default())
                .map_err(|e| format!("cannot bind loopback: {e}"))?,
        )
    } else {
        None
    };
    let target = own_server
        .as_ref()
        .map(|h| h.addr().to_string())
        .unwrap_or_else(|| addr.to_string());
    let mut client = connect_wait(&target, wait)?;
    let spec = spec.unwrap_or(GraphSpec::Grid(side, side));
    let label = spec.label();
    let g = spec.make(1);

    let expect_certified = |resp: Response, want_cached: bool| -> Result<(), String> {
        match resp {
            Response::Certified { cached, .. } if cached == want_cached => Ok(()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    };

    // cold misses: bypass the cache so every query is a fresh prove
    let misses = 3usize.min(hits.max(1));
    let mut miss_lat = Vec::with_capacity(misses);
    for _ in 0..misses {
        let start = Instant::now();
        expect_certified(client.certify(&g, true).map_err(|e| e.to_string())?, false)?;
        miss_lat.push(start.elapsed());
    }

    // one caching query (a miss on a cold server; a long-running
    // server may already hold the graph, which is fine), then the
    // measured hit loop
    match client.certify(&g, false).map_err(|e| e.to_string())? {
        Response::Certified { .. } => {}
        other => return Err(format!("unexpected response: {other:?}")),
    }
    let mut hit_lat = Vec::with_capacity(hits);
    let hit_wall = Instant::now();
    for _ in 0..hits {
        let start = Instant::now();
        expect_certified(client.certify(&g, false).map_err(|e| e.to_string())?, true)?;
        hit_lat.push(start.elapsed());
    }
    let hit_wall = hit_wall.elapsed();

    let stats = client.stats().map_err(|e| e.to_string())?;
    let miss_p50 = percentile(&mut miss_lat, 0.50);
    let hit_p50 = percentile(&mut hit_lat, 0.50);
    let hit_p90 = percentile(&mut hit_lat, 0.90);
    let hit_p99 = percentile(&mut hit_lat, 0.99);
    let hit_p999 = percentile(&mut hit_lat, 0.999);
    let speedup = miss_p50.as_secs_f64() / hit_p50.as_secs_f64().max(1e-9);
    let hit_rps = hits as f64 / hit_wall.as_secs_f64().max(1e-9);
    // machine-readable trailer (one JSON object per run, on its own
    // line) so benchmark trajectories can be scraped into BENCH_*.json
    let json = format!(
        "{{\"bench\":\"serve\",\"graph\":\"{label}\",\"nodes\":{},\
         \"miss_queries\":{misses},\"miss_p50_us\":{},\"hit_queries\":{hits},\
         \"hit_p50_us\":{},\"hit_p90_us\":{},\"hit_p99_us\":{},\"hit_p999_us\":{},\
         \"hit_rps\":{hit_rps:.0},\
         \"speedup\":{speedup:.2},\"cache_hits\":{},\"cache_misses\":{},\
         \"proves\":{},\"cache_bytes\":{},\"store_records\":{},\"store_segments\":{},\
         {}}}",
        g.node_count(),
        miss_p50.as_micros(),
        hit_p50.as_micros(),
        hit_p90.as_micros(),
        hit_p99.as_micros(),
        hit_p999.as_micros(),
        stats.cache_hits,
        stats.cache_misses,
        stats.proves,
        stats.cache_bytes,
        stats.store_records,
        stats.store_segments,
        stage_json(&stats.stages),
    );
    let stage_human: String = stats
        .stages
        .named()
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(name, h)| format!("{name} p50 {} us", h.p50_us()))
        .collect::<Vec<_>>()
        .join(", ");
    let out = format!(
        "bench-serve against {target} on {label} ({} nodes)\n\
         cache-miss (fresh prove): {} queries, p50 {:.3} ms\n\
         cache-hit: {} queries, p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, {:.0} req/s\n\
         speedup (miss p50 / hit p50): {speedup:.1}x {}\n\
         server: {} hits, {} misses, {} proves, {} cache bytes\n\
         stages: {stage_human}\n\
         {json}\n",
        g.node_count(),
        misses,
        miss_p50.as_secs_f64() * 1e3,
        hits,
        hit_p50.as_secs_f64() * 1e3,
        hit_p90.as_secs_f64() * 1e3,
        hit_p99.as_secs_f64() * 1e3,
        hit_p999.as_secs_f64() * 1e3,
        hit_rps,
        if speedup >= 10.0 {
            "(>= 10x: cache pays for itself)"
        } else {
            "(WARNING: below the 10x acceptance bar)"
        },
        stats.cache_hits,
        stats.cache_misses,
        stats.proves,
        stats.cache_bytes,
    );
    if let Some(handle) = own_server {
        handle.shutdown();
    }
    Ok(out)
}

/// Connection-storm mode (`--connections N[,N...]`): for each count,
/// hold that many concurrent connections and pipeline
/// `--requests-per-conn` certify requests down each, reporting an
/// rps-vs-connections curve. `self` spawns the in-process server with
/// the chosen front end (`--threaded` vs the event-loop default), so
/// the two can be compared like for like; against a remote address
/// the flag only labels the JSON (`mode`) — the server's front end is
/// whatever it was started with, and without a flag the label is
/// `"remote"`.
fn bench_storm(
    addr: &str,
    counts: &[usize],
    per_conn: usize,
    threaded: bool,
    mode_flagged: bool,
    wait: Option<Duration>,
) -> Result<String, String> {
    use dpc_service::loadgen::{storm, StormConfig};
    if counts.is_empty() {
        return Err("--connections needs at least one count".to_string());
    }
    let own_server = if addr == "self" {
        let cfg = ServeConfig {
            event_loop: !threaded,
            ..ServeConfig::default()
        };
        Some(
            dpc_service::serve("127.0.0.1:0", cfg)
                .map_err(|e| format!("cannot bind loopback: {e}"))?,
        )
    } else {
        None
    };
    let mode = if own_server.is_some() || mode_flagged {
        if threaded {
            "threaded"
        } else {
            "event-loop"
        }
    } else {
        "remote"
    };
    let target = own_server
        .as_ref()
        .map(|h| h.addr().to_string())
        .unwrap_or_else(|| addr.to_string());
    // probe (and honor --wait-ms) before the storm, and warm the
    // cache so the storm measures serving, not proving
    let g = dpc::graph::generators::grid(6, 6);
    let body = dpc_service::wire::encode_certify_request(&g, false, SchemeId::PLANARITY);
    {
        let mut probe = connect_wait(&target, wait)?;
        probe.certify(&g, false).map_err(|e| e.to_string())?;
    }
    let sock_addr = target
        .to_socket_addrs()
        .map_err(|e| format!("bad address {target}: {e}"))?
        .next()
        .ok_or_else(|| format!("bad address {target}"))?;

    let mut human = format!("bench-serve storm against {target} ({mode}, {per_conn} req/conn)\n");
    let mut curve = Vec::new();
    for &connections in counts {
        // bracket each storm with a Stats poll: the diff isolates the
        // storm's own per-stage latency and back-pressure stalls from
        // whatever ran before it on a long-lived server. Best-effort:
        // a server the storm just collapsed (the threaded 10k case)
        // still gets its failure row, only with empty stage data.
        let poll = |wait| connect_wait(&target, wait).ok()?.stats().ok();
        let before = poll(wait);
        let report = storm(
            sock_addr,
            &StormConfig {
                connections,
                requests_per_conn: per_conn,
                body: body.clone(),
                ..StormConfig::default()
            },
        )
        .map_err(|e| format!("storm failed: {e}"))?;
        let after = poll(None);
        let (stages, stalls) = match (&before, &after) {
            (Some(b), Some(a)) => (
                a.stages.diff(&b.stages),
                a.queue_full_stalls.saturating_sub(b.queue_full_stalls),
            ),
            _ => (Default::default(), 0),
        };
        human.push_str(&format!(
            "  {:>6} conns: {} ok, {} errors, {} failed ({} connect, {} io), {:.0} req/s over {:.0} ms\n\
             {:>10} queue-wait p50 {} us, write-flush p50 {} us, {stalls} queue-full stalls\n",
            report.connections,
            report.ok,
            report.errors,
            report.failed(),
            report.connect_failures,
            report.io_failures,
            report.rps(),
            report.elapsed.as_secs_f64() * 1e3,
            "",
            stages.queue_wait.p50_us(),
            stages.write_flush.p50_us(),
        ));
        curve.push(format!(
            "{{\"connections\":{},\"requests\":{},\"ok\":{},\"errors\":{},\
             \"failed\":{},\"connect_failures\":{},\"io_failures\":{},\
             \"rps\":{:.0},\"elapsed_ms\":{:.0},\"queue_full_stalls\":{stalls},{}}}",
            report.connections,
            report.requests,
            report.ok,
            report.errors,
            report.failed(),
            report.connect_failures,
            report.io_failures,
            report.rps(),
            report.elapsed.as_secs_f64() * 1e3,
            stage_json(&stages),
        ));
    }
    let json = format!(
        "{{\"bench\":\"serve-storm\",\"mode\":\"{mode}\",\"graph\":\"grid(6,6)\",\
         \"requests_per_conn\":{per_conn},\"curve\":[{}]}}",
        curve.join(",")
    );
    human.push_str(&json);
    human.push('\n');
    if let Some(handle) = own_server {
        handle.shutdown();
    }
    Ok(human)
}

/// Drives a whole ring: distinct same-size graphs (two per node, so
/// rendezvous routing exercises every server) through miss and hit
/// rounds, then reports fleet-aggregated stats plus the client-side
/// routing counters — and the same machine-readable JSON trailer the
/// single-node bench emits, extended with `ring_*` fields.
fn bench_ring(endpoint: Endpoint, hits: usize, side: u32) -> Result<String, String> {
    let mut cc = endpoint.open_ring()?;
    let ring_nodes = cc.ring().len();
    let replication = cc.replication();
    let n = side * side;
    // two graphs selected per node BY OWNER, so the bench provably
    // drives every server (a blind sample could skip one and skew
    // the JSON trajectory's ring_spread)
    let graphs: Vec<Graph> = dpc_service::cluster::graphs_by_owner(cc.ring(), 2, n)
        .into_iter()
        .flatten()
        .collect();

    let expect_certified = |resp: Response, want_cached: bool| -> Result<(), String> {
        match resp {
            Response::Certified { cached, .. } if cached == want_cached => Ok(()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    };

    // cold misses: one bypass prove per graph, measured
    let mut miss_lat = Vec::with_capacity(graphs.len());
    for g in &graphs {
        let start = Instant::now();
        expect_certified(cc.certify(g, true).map_err(|e| e.to_string())?, false)?;
        miss_lat.push(start.elapsed());
    }
    // one caching round (fresh servers prove here), then the hit loop
    for g in &graphs {
        match cc.certify(g, false).map_err(|e| e.to_string())? {
            Response::Certified { .. } => {}
            other => return Err(format!("unexpected response: {other:?}")),
        }
    }
    // the hit loop tolerates failures instead of aborting: the CI
    // chaos step kills a node mid-loop, and the whole point of
    // replication is that `failed` stays 0 anyway
    let mut failed = 0usize;
    let mut hit_lat = Vec::with_capacity(hits);
    let hit_wall = Instant::now();
    for i in 0..hits {
        let g = &graphs[i % graphs.len()];
        let start = Instant::now();
        match cc.certify(g, false) {
            Ok(Response::Certified { .. }) => hit_lat.push(start.elapsed()),
            Ok(_) | Err(_) => failed += 1,
        }
    }
    let hit_wall = hit_wall.elapsed();

    let routing = cc.stats().clone();
    let (fleet, _per_node) = cc.fleet_stats().map_err(|e| e.to_string())?;
    let misses = miss_lat.len();
    let miss_p50 = percentile(&mut miss_lat, 0.50);
    let hit_p50 = percentile(&mut hit_lat, 0.50);
    let hit_p90 = percentile(&mut hit_lat, 0.90);
    let hit_p99 = percentile(&mut hit_lat, 0.99);
    let hit_p999 = percentile(&mut hit_lat, 0.999);
    let speedup = miss_p50.as_secs_f64() / hit_p50.as_secs_f64().max(1e-9);
    let hit_rps = hits as f64 / hit_wall.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\"bench\":\"serve\",\"mode\":\"ring\",\"graph\":\"stacked_triangulation({n})x{}\",\
         \"nodes\":{n},\"ring_nodes\":{ring_nodes},\"ring_spread\":{},\"failovers\":{},\
         \"replication\":{replication},\"failed\":{failed},\"replica_writes\":{},\
         \"read_repairs\":{},\"replica_errors\":{},\
         \"miss_queries\":{misses},\"miss_p50_us\":{},\"hit_queries\":{hits},\
         \"hit_p50_us\":{},\"hit_p90_us\":{},\"hit_p99_us\":{},\"hit_p999_us\":{},\
         \"hit_rps\":{hit_rps:.0},\
         \"speedup\":{speedup:.2},\"cache_hits\":{},\"cache_misses\":{},\
         \"proves\":{},\"cache_bytes\":{},\"store_records\":{},\"store_segments\":{},\
         {}}}",
        graphs.len(),
        routing.nodes_used(),
        routing.failovers,
        routing.replica_writes,
        routing.read_repairs,
        routing.replica_errors,
        miss_p50.as_micros(),
        hit_p50.as_micros(),
        hit_p90.as_micros(),
        hit_p99.as_micros(),
        hit_p999.as_micros(),
        fleet.cache_hits,
        fleet.cache_misses,
        fleet.proves,
        fleet.cache_bytes,
        fleet.store_records,
        fleet.store_segments,
        stage_json(&fleet.stages),
    );
    Ok(format!(
        "bench-serve against a ring of {ring_nodes} node(s), {} graphs of {n} nodes each (replication {replication}, {failed} failed)\n\
         routing: {}/{ring_nodes} nodes served traffic, {} failovers\n\
         cache-miss (fresh prove): {misses} queries, p50 {:.3} ms\n\
         cache-hit: {hits} queries, p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, {:.0} req/s\n\
         speedup (miss p50 / hit p50): {speedup:.1}x\n\
         fleet: {} hits, {} misses, {} proves, {} store records\n\
         {json}\n",
        graphs.len(),
        routing.nodes_used(),
        routing.failovers,
        miss_p50.as_secs_f64() * 1e3,
        hit_p50.as_secs_f64() * 1e3,
        hit_p90.as_secs_f64() * 1e3,
        hit_p99.as_secs_f64() * 1e3,
        hit_p999.as_secs_f64() * 1e3,
        hit_rps,
        fleet.cache_hits,
        fleet.cache_misses,
        fleet.proves,
        fleet.store_records,
    ))
}

/// `--distributed`: proves `count` seeded graphs twice — once fanned
/// across the ring by `ClusterClient::certify_distributed` (rendezvous
/// owner per graph, pipelined, merged with the shared integer fold),
/// once sequentially down a single connection to one node — and
/// demands the two `BatchSummary` folds be identical before reporting
/// the speedup. Both sweeps bypass the cache so they measure proving,
/// not cache hits. The JSON gains `distributed_*` fields plus `cores`,
/// so CI can skip the speedup gate on a 1-core runner (the
/// byte-identity gate never skips).
fn bench_distributed(
    endpoint: Endpoint,
    count: usize,
    spec: Option<GraphSpec>,
) -> Result<String, String> {
    let spec = spec.unwrap_or(GraphSpec::Tri(2000));
    let wait = endpoint.wait;
    let mut cc = endpoint.open_ring()?;
    let ring_nodes = cc.ring().len();
    let first = cc.ring().addrs()[0].clone();
    let graphs: Vec<Graph> = (0..count).map(|i| spec.make(i as u64 + 1)).collect();

    // sequential reference first (the ring is equally cold for both
    // sweeps since they bypass the cache anyway)
    let mut seq_client = connect_wait(&first, wait)?;
    let seq_start = Instant::now();
    let mut seq_results: Vec<Option<Outcome>> = Vec::with_capacity(count);
    for g in &graphs {
        match seq_client
            .certify(g, CertifyOptions::new().bypass().summary())
            .map_err(|e| e.to_string())?
        {
            Response::CertifiedSummary { outcome, .. } => seq_results.push(Some(outcome)),
            Response::Declined { .. } => seq_results.push(None),
            other => return Err(format!("unexpected response: {other:?}")),
        }
    }
    let seq_wall = seq_start.elapsed();
    let seq_summary = BatchSummary::fold(seq_results.iter().map(|o| o.as_ref()));

    let dist_start = Instant::now();
    let report = cc.certify_distributed(&graphs, true, SchemeId::PLANARITY);
    let dist_wall = dist_start.elapsed();

    if report.summary != seq_summary {
        return Err(format!(
            "distributed summary diverges from the sequential fold (bug!)\n\
             distributed: {:?}\n sequential: {:?}",
            report.summary, seq_summary
        ));
    }
    // per-instance outcomes must agree too, not just the fold
    for (i, (d, s)) in report.results.iter().zip(&seq_results).enumerate() {
        if d.as_ref().ok() != s.as_ref() {
            return Err(format!(
                "graph {i}: distributed outcome {d:?} != sequential {s:?} (bug!)"
            ));
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = seq_wall.as_secs_f64() / dist_wall.as_secs_f64().max(1e-9);
    let s = &report.summary;
    let json = format!(
        "{{\"bench\":\"serve-distributed\",\"graph\":\"{}\",\"graphs\":{count},\
         \"ring_nodes\":{ring_nodes},\"distributed_nodes_used\":{},\
         \"delegated_proves\":{},\"delegate_errors\":{},\"merge_us\":{},\
         \"distributed_wall_ms\":{:.1},\"sequential_wall_ms\":{:.1},\
         \"speedup\":{speedup:.2},\"summary_identical\":true,\"cores\":{cores},\
         \"summary\":{{\"instances\":{},\"proved\":{},\"declined\":{},\
         \"accepted\":{},\"rejecting_nodes\":{},\"nodes\":{},\
         \"max_cert_bits\":{},\"total_cert_bits\":{},\"max_rounds\":{}}}}}",
        spec.label(),
        report.nodes_used,
        report.delegated,
        report.delegate_errors,
        report.merge_wall.as_micros(),
        dist_wall.as_secs_f64() * 1e3,
        seq_wall.as_secs_f64() * 1e3,
        s.instances,
        s.proved,
        s.declined,
        s.accepted,
        s.rejecting_nodes,
        s.nodes,
        s.max_cert_bits,
        s.total_cert_bits,
        s.max_rounds,
    );
    Ok(format!(
        "bench-serve --distributed: {count} x {} across {ring_nodes} node(s)\n\
         distributed: {:.1} ms over {} node(s), {} delegated, {} errors, merge {} us\n\
         sequential:  {:.1} ms down one connection to {first}\n\
         speedup: {speedup:.2}x on {cores} core(s)\n\
         fold: {} proved, {} declined, {} accepted — identical to the sequential fold\n\
         {json}\n",
        spec.label(),
        dist_wall.as_secs_f64() * 1e3,
        report.nodes_used,
        report.delegated,
        report.delegate_errors,
        report.merge_wall.as_micros(),
        seq_wall.as_secs_f64() * 1e3,
        s.proved,
        s.declined,
        s.accepted,
    ))
}

/// The per-stage breakdown as a `"stages":{...}` JSON fragment for
/// the bench trailers: server-side sample count and p50/p99 per
/// traced stage (stages with no samples are included at zero, so a
/// scraper can rely on the keys).
fn stage_json(stages: &dpc_service::StageSnapshot) -> String {
    let fields: Vec<String> = stages
        .named()
        .iter()
        .map(|(name, h)| {
            format!(
                "\"{name}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                h.count(),
                h.p50_us(),
                h.p99_us(),
            )
        })
        .collect();
    format!("\"stages\":{{{}}}", fields.join(","))
}

fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_planar_and_nonplanar() {
        let out = run(&["check", "Bw"]).unwrap(); // K3
        assert!(out.contains("PLANAR"));
        let out = run(&["check", "D~{"]).unwrap(); // K5
        assert!(out.contains("NOT PLANAR"));
        assert!(out.contains("K5"));
    }

    #[test]
    fn certify_round_trip() {
        let g6 = run(&["gen", "triangulation", "40", "7"]).unwrap();
        let out = run(&["certify", g6.trim()]).unwrap();
        assert!(out.contains("all nodes accept"));
        assert!(out.contains("rounds: 1"));
        let out = run(&["certify", "D~{"]).unwrap();
        assert!(out.contains("prover declines"));
    }

    #[test]
    fn embed_lists_faces() {
        let out = run(&["embed", "Bw"]).unwrap(); // triangle: two faces
        assert_eq!(out.matches("face ").count(), 2);
        assert!(run(&["embed", "D~{"]).is_err());
    }

    #[test]
    fn kuratowski_extraction() {
        let g6 = run(&["gen", "k33sub", "2", "1"]).unwrap();
        let out = run(&["kuratowski", g6.trim()]).unwrap();
        assert!(out.contains("K33"));
        assert!(run(&["kuratowski", "Bw"]).is_err());
    }

    #[test]
    fn usage_and_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["gen", "nosuch", "5"]).is_err());
        assert!(run(&["check", "\u{1}"]).is_err());
        assert!(
            run(&["query", "127.0.0.1:1", "stats"]).is_err(),
            "nothing listens there"
        );
        assert!(run(&["serve", "definitely:not:an:addr"]).is_err());
    }

    #[test]
    fn soundness_subcommand_prints_the_attack_table() {
        let g6 = run(&["gen", "planted-k5", "20", "3"]).unwrap();
        let out = run(&["soundness", g6.trim(), "1"]).unwrap();
        assert!(out.contains("non-planar no-instance"));
        assert!(out.contains("attack"));
        assert!(out.contains("replay-planarized"));
        assert!(out.contains("soundness holds"));
        // planar instances get the caveat instead
        let out = run(&["soundness", "Bw"]).unwrap();
        assert!(out.contains("attacks are expected to succeed"));
    }

    #[test]
    fn gen_covers_the_service_families() {
        for family in dpc_service::gen::FAMILIES {
            let out = run(&["gen", family, "20", "2"]).unwrap();
            assert!(graph6::decode(out.trim()).is_ok(), "{family}");
        }
    }

    #[test]
    fn query_round_trip_against_a_live_server() {
        let handle = dpc_service::serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let g6 = run(&["gen", "grid", "49", "1"]).unwrap();
        let g6 = g6.trim();

        let first = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(first.contains("cache: miss"));
        assert!(first.contains("all nodes accept"));
        let second = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(second.contains("cache: hit"));

        let checked = run(&["query", &addr, "check", "D~{"]).unwrap();
        assert!(checked.contains("NOT PLANAR"));
        let declined = run(&["query", &addr, "certify", "D~{"]).unwrap();
        assert!(declined.contains("prover declines"));

        let generated = run(&["query", &addr, "gen", "cycle", "12"]).unwrap();
        assert_eq!(graph6::decode(generated.trim()).unwrap().node_count(), 12);

        let stats = run(&["query", &addr, "stats"]).unwrap();
        assert!(stats.contains("1 hits"), "{stats}");

        handle.shutdown();
    }

    #[test]
    fn schemes_lists_the_registry() {
        let out = run(&["schemes"]).unwrap();
        for name in [
            "planarity",
            "bipartite",
            "tree",
            "spanning-tree",
            "path-outerplanar",
            "non-planarity",
            "universal",
            "mod-counter",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("O(log n) bits (Theorem 1)"));
        assert!(out.contains("wire default"));
    }

    #[test]
    fn query_scheme_flag_routes_and_isolates() {
        let handle = dpc_service::serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let g6 = run(&["gen", "grid", "36", "1"]).unwrap();
        let g6 = g6.trim();

        // same graph, two schemes: two cache entries, each with its
        // own miss-then-hit sequence
        let plan = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(plan.contains("scheme: planarity"), "{plan}");
        assert!(plan.contains("cache: miss"));
        let bip = run(&["query", &addr, "certify", "--scheme", "bipartite", g6]).unwrap();
        assert!(bip.contains("scheme: bipartite"), "{bip}");
        assert!(bip.contains("cache: miss"), "no cross-scheme hit: {bip}");
        assert!(bip.contains("all nodes accept"));
        let bip2 = run(&["query", &addr, "certify", "--scheme", "bipartite", g6]).unwrap();
        assert!(bip2.contains("cache: hit"), "{bip2}");

        // generic membership verdicts
        let member = run(&["query", &addr, "check", "--scheme", "bipartite", g6]).unwrap();
        assert!(member.contains("IN CLASS"), "{member}");
        let non = run(&["query", &addr, "check", "--scheme", "tree", g6]).unwrap();
        assert!(non.contains("NOT IN CLASS"), "{non}");

        // spanning-tree certifies any connected graph
        let st = run(&["query", &addr, "certify", "--scheme", "spanning-tree", g6]).unwrap();
        assert!(st.contains("scheme: spanning-tree"), "{st}");
        assert!(st.contains("all nodes accept"), "{st}");

        // per-scheme stats rows over the wire
        let stats = run(&["query", &addr, "stats"]).unwrap();
        assert!(stats.contains("bipartite"), "{stats}");
        assert!(stats.contains("mod-counter"), "{stats}");

        // unknown scheme name fails client-side with a pointer
        let err = run(&["query", &addr, "certify", "--scheme", "nosuch", g6]).unwrap_err();
        assert!(err.contains("dpc schemes"), "{err}");

        // gen accepts --scheme now: "default" routes to the scheme's
        // canonical yes-instance family
        let bip_gen = run(&[
            "query",
            &addr,
            "gen",
            "default",
            "25",
            "--scheme",
            "bipartite",
        ])
        .unwrap();
        let g = graph6::decode(bip_gen.trim()).unwrap();
        let member = run(&[
            "query",
            &addr,
            "check",
            "--scheme",
            "bipartite",
            bip_gen.trim(),
        ])
        .unwrap();
        assert!(member.contains("IN CLASS"), "{member}");
        assert!(g.node_count() >= 25);

        handle.shutdown();
    }

    #[test]
    fn mod_counter_over_graph6_declines_with_a_pointer_to_the_wire() {
        // the guard fires client-side, before any connection: the
        // address below has nothing listening, and must not matter
        let blocks = run(&["gen", "blocks", "30", "4"]).unwrap();
        for sub in ["certify", "check", "soundness"] {
            let err = run(&[
                "query",
                "127.0.0.1:1",
                sub,
                "--scheme",
                "mod-counter",
                blocks.trim(),
            ])
            .unwrap_err();
            assert!(!err.contains('\n'), "one-line error: {err:?}");
            assert!(err.contains("graph6"), "{err}");
            assert!(err.contains("identifiers"), "{err}");
            assert!(err.contains("binary wire"), "{err}");
        }
        // gen is guarded too: its graph6 *output* would silently drop
        // the load-bearing identifiers
        let err = run(&[
            "query",
            "127.0.0.1:1",
            "gen",
            "default",
            "30",
            "--scheme",
            "mod-counter",
        ])
        .unwrap_err();
        assert!(err.contains("graph6"), "{err}");
        // id-free schemes still pass the guard (and then fail on the
        // dead address, proving the guard came first above)
        let err = run(&[
            "query",
            "127.0.0.1:1",
            "certify",
            "--scheme",
            "bipartite",
            blocks.trim(),
        ])
        .unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn gen_default_family_routes_by_scheme() {
        // local subcommand: "default" means the wire-default scheme
        let out = run(&["gen", "default", "30", "1"]).unwrap();
        let g = graph6::decode(out.trim()).unwrap();
        assert!(dpc::planar::lr::is_planar(&g), "planarity default family");
    }

    #[test]
    fn serve_schemes_flag_validates_names() {
        assert!(run(&["serve", "127.0.0.1:1", "--schemes", "nosuch"]).is_err());
        // store flags validate before binding anything
        assert!(run(&["serve", "127.0.0.1:1", "--store-budget-bytes", "4096"]).is_err());
        assert!(run(&["serve", "127.0.0.1:1", "--store-dir"]).is_err());
        assert!(run(&["serve", "127.0.0.1:1", "--bogus-flag", "x"]).is_err());
    }

    #[test]
    fn schemes_lists_the_needs_ids_capability() {
        let out = run(&["schemes"]).unwrap();
        assert!(out.contains("needs-ids"), "{out}");
        let mc_line = out
            .lines()
            .find(|l| l.contains("mod-counter"))
            .expect("mod-counter row");
        assert!(mc_line.contains("binary wire only"), "{mc_line}");
    }

    #[test]
    fn store_subcommands_stat_compact_verify() {
        use dpc_service::store::CertStore;
        let dir = std::env::temp_dir().join(format!("dpc-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.display().to_string();
        // seed a store with two certified planarity records
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            for seed in 0..2u64 {
                let g = dpc::graph::generators::stacked_triangulation(18, seed);
                let certified =
                    dpc::core::harness::certify_pls(&PlanarityScheme::new(), &g).unwrap();
                let mut keyed = Vec::new();
                dpc_runtime::put_uvarint(&mut keyed, 0);
                dpc_service::wire::encode_graph(&mut keyed, &g);
                let entry = dpc_service::cache::CacheEntry::new(
                    dpc_service::cache::ProveResult::Certified {
                        assignment: certified.assignment,
                        outcome: certified.outcome,
                    },
                    keyed,
                );
                store.put(&entry.record()).unwrap();
            }
            store.flush().unwrap();
        }
        let stat = run(&["store", "stat", &dir_s]).unwrap();
        assert!(stat.contains("2 records"), "{stat}");
        assert!(stat.contains("planarity"), "{stat}");
        let verify = run(&["store", "verify", &dir_s]).unwrap();
        assert!(verify.contains("verifies clean"), "{verify}");
        assert!(verify.contains("2 records"), "{verify}");
        let compact = run(&["store", "compact", &dir_s]).unwrap();
        assert!(compact.contains("2 records live"), "{compact}");
        assert!(run(&["store", "nosuch", &dir_s]).is_err());

        // the chaos tool flips a verdict but keeps the store
        // structurally clean: `verify` still passes afterwards (the
        // whole point — only the auditor can catch the lie)
        let corrupt = run(&["store", "corrupt", &dir_s]).unwrap();
        assert!(corrupt.contains("flipped one verdict"), "{corrupt}");
        let after = run(&["store", "verify", &dir_s]).unwrap();
        assert!(after.contains("verifies clean"), "{after}");
        let _ = std::fs::remove_dir_all(&dir);

        // nothing to corrupt is a loud error, not a silent no-op
        let empty = std::env::temp_dir().join(format!("dpc-cli-nocorr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&empty);
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run(&["store", "corrupt", &empty.display().to_string()]).is_err());
        let _ = std::fs::remove_dir_all(&empty);
    }

    /// Starts `n` servers, each with a store under `base`; returns
    /// handles and the comma-joined `--nodes` list.
    fn ring_of(n: usize, base: &std::path::Path) -> (Vec<dpc_service::ServerHandle>, String) {
        let handles: Vec<dpc_service::ServerHandle> = (0..n)
            .map(|i| {
                let cfg = ServeConfig {
                    store: Some(SegmentConfig::new(base.join(format!("node-{i}")))),
                    ..ServeConfig::default()
                };
                dpc_service::serve("127.0.0.1:0", cfg).unwrap()
            })
            .collect();
        let csv = handles
            .iter()
            .map(|h| h.addr().to_string())
            .collect::<Vec<_>>()
            .join(",");
        (handles, csv)
    }

    #[test]
    fn query_nodes_routes_a_ring_with_failover_and_cluster_stats() {
        let base = std::env::temp_dir().join(format!("dpc-cli-ring-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (mut handles, csv) = ring_of(3, &base);

        // the node ports are OS-assigned, so pick the traffic through
        // the pure ring: two triangulations per node — the spread
        // assertion below is then deterministic, not probabilistic
        use dpc_service::cluster::{graphs_by_owner, Ring};
        let ring = Ring::new(csv.split(',')).unwrap();
        let g6s: Vec<String> = graphs_by_owner(&ring, 2, 24)
            .into_iter()
            .flatten()
            .map(|g| graph6::encode(&g))
            .collect();

        // mixed-scheme traffic through the ring
        for g6 in &g6s {
            let out = run(&["query", "--nodes", &csv, "certify", g6]).unwrap();
            assert!(out.contains("all nodes accept"), "{out}");
        }
        let grid = run(&["gen", "grid", "36", "1"]).unwrap();
        let bip = run(&[
            "query",
            "--nodes",
            &csv,
            "certify",
            "--scheme",
            "bipartite",
            grid.trim(),
        ])
        .unwrap();
        assert!(bip.contains("scheme: bipartite"), "{bip}");

        // the fleet view sees every node and the spread
        let stats = run(&["cluster-stats", "--nodes", &csv]).unwrap();
        assert!(stats.contains("fleet (3/3 nodes up)"), "{stats}");
        let spread = stats
            .lines()
            .filter(|l| l.starts_with("node ") && !l.contains("certify 0"))
            .count();
        assert!(spread >= 2, "keys spread across >= 2 nodes:\n{stats}");

        // kill one node: routed queries keep succeeding via failover
        handles.remove(0).shutdown();
        for g6 in &g6s {
            let out = run(&["query", "--nodes", &csv, "certify", g6]).unwrap();
            assert!(out.contains("all nodes accept"), "{out}");
        }
        let stats = run(&["cluster-stats", "--nodes", &csv]).unwrap();
        assert!(stats.contains("DOWN"), "{stats}");
        assert!(stats.contains("fleet (2/3 nodes up)"), "{stats}");

        // `query --nodes stats` renders the same fleet view
        let qstats = run(&["query", "--nodes", &csv, "stats"]).unwrap();
        assert!(qstats.contains("fleet (2/3 nodes up)"), "{qstats}");

        for h in handles {
            h.shutdown();
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn store_merge_subcommand_unions_and_deduplicates() {
        use dpc_service::store::CertStore;
        let base = std::env::temp_dir().join(format!("dpc-cli-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (a_dir, b_dir) = (base.join("a"), base.join("b"));
        let seed_store = |dir: &std::path::Path, seeds: std::ops::Range<u64>| {
            let store = SegmentStore::open(SegmentConfig::new(dir)).unwrap();
            for seed in seeds {
                let g = dpc::graph::generators::stacked_triangulation(18, seed);
                let certified =
                    dpc::core::harness::certify_pls(&PlanarityScheme::new(), &g).unwrap();
                let mut keyed = Vec::new();
                dpc_runtime::put_uvarint(&mut keyed, 0);
                dpc_service::wire::encode_graph(&mut keyed, &g);
                let entry = dpc_service::cache::CacheEntry::new(
                    dpc_service::cache::ProveResult::Certified {
                        assignment: certified.assignment,
                        outcome: certified.outcome,
                    },
                    keyed,
                );
                store.put(&entry.record()).unwrap();
            }
            store.flush().unwrap();
        };
        seed_store(&a_dir, 0..3); // seeds 0,1,2
        seed_store(&b_dir, 2..5); // seeds 2,3,4 — one overlap
        let (a_s, b_s) = (a_dir.display().to_string(), b_dir.display().to_string());
        let out = run(&["store", "merge", &a_s, &b_s]).unwrap();
        assert!(
            out.contains("3 records scanned, 2 new, 1 duplicates skipped"),
            "{out}"
        );
        assert!(out.contains("now 5 records"), "{out}");
        // merged store verifies clean; re-merging is a pure no-op
        assert!(run(&["store", "verify", &a_s])
            .unwrap()
            .contains("verifies clean"));
        let again = run(&["store", "merge", &a_s, &b_s]).unwrap();
        assert!(again.contains("0 new, 3 duplicates skipped"), "{again}");
        assert!(again.contains("now 5 records"), "{again}");
        // guard rails: self-merge, missing sources, and a mistyped
        // destination (which must not become a fresh store) all refuse
        assert!(run(&["store", "merge", &a_s, &a_s]).is_err());
        let ghost = base.join("nosuch").display().to_string();
        assert!(run(&["store", "merge", &a_s, &ghost]).is_err());
        assert!(run(&["store", "merge", &ghost, &b_s]).is_err());
        assert!(!base.join("nosuch").exists(), "no store was created");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn wait_ms_retries_the_connect_until_the_deadline() {
        let start = Instant::now();
        let err = run(&["query", "127.0.0.1:1", "stats", "--wait-ms", "150"]).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
        assert!(
            start.elapsed() >= Duration::from_millis(150),
            "the deadline was honored: {:?}",
            start.elapsed()
        );
        assert!(run(&["query", "127.0.0.1:1", "stats", "--wait-ms", "abc"]).is_err());
    }

    #[test]
    fn bench_serve_ring_drives_every_node() {
        let base = std::env::temp_dir().join(format!("dpc-cli-benchring-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (handles, csv) = ring_of(2, &base);
        let out = run(&["bench-serve", "--nodes", &csv, "6", "8"]).unwrap();
        let json = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("JSON summary line");
        for key in [
            "\"bench\":\"serve\"",
            "\"mode\":\"ring\"",
            "\"ring_nodes\":2",
            "\"ring_spread\":2",
            "\"failovers\":0",
            "\"replication\":2",
            "\"failed\":0",
            "\"replica_writes\":",
            "\"read_repairs\":0",
            "\"hit_p50_us\":",
            "\"speedup\":",
            "\"store_records\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        for h in handles {
            h.shutdown();
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn cluster_flags_validate() {
        // duplicate nodes are a configuration error, caught before
        // any connection
        assert!(run(&["query", "--nodes", "a:1,a:1", "stats"]).is_err());
        assert!(run(&["cluster-stats"]).is_err(), "--nodes is required");
        // a repeated flag is a loud error, never a positional
        let err = run(&[
            "query",
            "--wait-ms",
            "100",
            "--wait-ms",
            "200",
            "127.0.0.1:1",
            "stats",
        ])
        .unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        assert!(run(&["query", "--nodes"]).is_err(), "--nodes needs a value");
        assert!(
            run(&["store", "merge", "/tmp/only-dst"]).is_err(),
            "needs sources"
        );
        // replication must be a positive count
        for bad in ["0", "abc"] {
            let err =
                run(&["query", "--nodes", "a:1,b:1", "--replication", bad, "stats"]).unwrap_err();
            assert!(err.contains("replication"), "{err}");
        }
    }

    #[test]
    fn bench_serve_reports_the_speedup() {
        // small grid keeps the test fast; the 10x acceptance bar on
        // grid(100,100) is asserted in crates/service/tests/service_e2e.rs
        let out = run(&["bench-serve", "self", "8", "40"]).unwrap();
        assert!(out.contains("cache-hit"));
        assert!(out.contains("cache-miss"));
        assert!(out.contains("speedup"));
        // the machine-readable trailer: one JSON object on its own line
        let json = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("JSON summary line");
        assert!(json.ends_with('}'), "{json}");
        for key in [
            "\"bench\":\"serve\"",
            "\"hit_p50_us\":",
            "\"miss_p50_us\":",
            "\"speedup\":",
            "\"hit_rps\":",
            "\"store_records\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
