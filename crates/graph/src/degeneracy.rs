//! Degeneracy (smallest-last) orderings.
//!
//! A graph is `d`-degenerate if every subgraph has a node of degree at
//! most `d`. Planar graphs are 5-degenerate — the property Section 3.3 of
//! the paper uses to hand each node at most **five** edge-certificates.
//! This module computes the degeneracy and the elimination ordering with
//! the standard linear-time bucket algorithm, and provides the
//! edge-to-endpoint assignment used by the planarity scheme.

use crate::graph::{Graph, NodeId};

/// Result of the smallest-last computation.
#[derive(Debug, Clone)]
pub struct Degeneracy {
    /// The degeneracy `d` of the graph.
    pub degeneracy: usize,
    /// Elimination order: `order[0]` removed first.
    pub order: Vec<NodeId>,
    /// `rank[v]` = position of `v` in `order`.
    pub rank: Vec<u32>,
}

/// Computes the degeneracy ordering in `O(n + m)` with bucketed degrees.
pub fn degeneracy_order(g: &Graph) -> Degeneracy {
    let n = g.node_count();
    if n == 0 {
        return Degeneracy {
            degeneracy: 0,
            order: Vec::new(),
            rank: Vec::new(),
        };
    }
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as NodeId)).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);
    // buckets[d] = stack of nodes with current degree d
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[deg[v]].push(v as NodeId);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cur = 0usize;
    while order.len() < n {
        // find the smallest non-empty bucket; degrees only drop by one per
        // removal so scanning from max(cur-1, 0) keeps this linear overall
        cur = cur.saturating_sub(1);
        while cur <= maxd && buckets[cur].is_empty() {
            cur += 1;
        }
        let v = loop {
            let v = buckets[cur].pop().expect("non-empty bucket");
            if !removed[v as usize] && deg[v as usize] == cur {
                break v;
            }
            while cur <= maxd && buckets[cur].is_empty() {
                cur += 1;
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cur);
        order.push(v);
        for w in g.neighbors(v) {
            if !removed[w as usize] {
                let dw = deg[w as usize];
                deg[w as usize] = dw - 1;
                buckets[dw - 1].push(w);
            }
        }
    }
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    Degeneracy {
        degeneracy,
        order,
        rank,
    }
}

/// Assigns every edge to the endpoint **earlier** in the elimination
/// order. Each node receives at most `degeneracy` edges — at most 5 on
/// planar graphs, exactly the bound Algorithm 2's certificates rely on.
///
/// Returns `owner[e]` for every edge id.
pub fn assign_edges_by_degeneracy(g: &Graph, deg: &Degeneracy) -> Vec<NodeId> {
    g.edges()
        .iter()
        .map(|e| {
            if deg.rank[e.u as usize] < deg.rank[e.v as usize] {
                e.u
            } else {
                e.v
            }
        })
        .collect()
}

/// Naive ablation baseline: assigns every edge to its smaller-index
/// endpoint; a node can receive up to `Δ` edges.
pub fn assign_edges_naive(g: &Graph) -> Vec<NodeId> {
    g.edges().iter().map(|e| e.canonical().0).collect()
}

/// Maximum number of edges assigned to a single node.
pub fn max_edges_per_node(g: &Graph, owner: &[NodeId]) -> usize {
    let mut cnt = vec![0usize; g.node_count()];
    for &o in owner {
        cnt[o as usize] += 1;
    }
    cnt.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tree_degeneracy_is_one() {
        let g = generators::random_tree(100, 5);
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, 1);
        let owner = assign_edges_by_degeneracy(&g, &d);
        assert!(max_edges_per_node(&g, &owner) <= 1);
    }

    #[test]
    fn cycle_degeneracy_is_two() {
        let d = degeneracy_order(&generators::cycle(30));
        assert_eq!(d.degeneracy, 2);
    }

    #[test]
    fn complete_graph_degeneracy() {
        let d = degeneracy_order(&generators::complete(7));
        assert_eq!(d.degeneracy, 6);
    }

    #[test]
    fn planar_graphs_are_at_most_5_degenerate() {
        for seed in 0..5u64 {
            let g = generators::stacked_triangulation(200, seed);
            let d = degeneracy_order(&g);
            assert!(
                d.degeneracy <= 5,
                "planar must be 5-degenerate, got {}",
                d.degeneracy
            );
            let owner = assign_edges_by_degeneracy(&g, &d);
            assert!(max_edges_per_node(&g, &owner) <= 5);
        }
    }

    #[test]
    fn stacked_triangulation_is_3_degenerate() {
        // stacked triangulations are 3-degenerate by construction
        let g = generators::stacked_triangulation(100, 9);
        assert_eq!(degeneracy_order(&g).degeneracy, 3);
    }

    #[test]
    fn naive_assignment_can_be_much_worse() {
        let g = generators::star(50);
        let d = degeneracy_order(&g);
        let smart = assign_edges_by_degeneracy(&g, &d);
        assert_eq!(max_edges_per_node(&g, &smart), 1, "leaves own their edge");
        let naive = assign_edges_naive(&g);
        assert_eq!(max_edges_per_node(&g, &naive), 49, "hub owns everything");
    }

    #[test]
    fn order_is_a_permutation() {
        let g = generators::grid(6, 6);
        let d = degeneracy_order(&g);
        let mut sorted = d.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..36).collect::<Vec<_>>());
        for (i, &v) in d.order.iter().enumerate() {
            assert_eq!(d.rank[v as usize] as usize, i);
        }
    }

    #[test]
    fn degeneracy_bound_holds_along_order() {
        // every node has at most `degeneracy` neighbors later in the order
        let g = generators::random_planar(150, 0.7, 3);
        let d = degeneracy_order(&g);
        for v in g.nodes() {
            let later = g
                .neighbors(v)
                .filter(|&w| d.rank[w as usize] > d.rank[v as usize])
                .count();
            assert!(later <= d.degeneracy);
        }
    }
}
