//! Kuratowski subgraph extraction.
//!
//! Any non-planar graph contains a subdivision of `K5` or `K3,3`
//! (Kuratowski). Section 2 of the paper observes that certifying
//! **non**-planarity is folklore: put the subdivided Kuratowski graph in
//! the certificates. This module extracts one by the classic
//! edge-deletion method: repeatedly remove edges whose removal keeps the
//! graph non-planar; what survives (after removing isolated parts and
//! smoothing) is an edge-minimal non-planar subgraph, i.e. a Kuratowski
//! subdivision. Cost: `O(m)` planarity tests.

use crate::lr::is_planar;
use dpc_graph::minors::{kuratowski_kind, KuratowskiKind};
use dpc_graph::{Graph, NodeId};

/// A subdivided `K5` or `K3,3` found inside a host graph.
#[derive(Debug, Clone)]
pub struct KuratowskiWitness {
    /// Which Kuratowski graph it subdivides.
    pub kind: KuratowskiKind,
    /// Edges of the subdivision, as host-graph edges `(u, v)`.
    pub edges: Vec<(NodeId, NodeId)>,
    /// The branch nodes (degree ≥ 3 in the subdivision): 5 or 6 of them.
    pub branch_nodes: Vec<NodeId>,
}

/// Extracts a Kuratowski subdivision from a non-planar graph.
///
/// Returns `None` if `g` is planar.
pub fn extract_kuratowski(g: &Graph) -> Option<KuratowskiWitness> {
    if is_planar(g) {
        return None;
    }
    // iteratively delete edges that are not needed for non-planarity
    let mut alive: Vec<bool> = vec![true; g.edge_count()];
    for e in 0..g.edge_count() {
        alive[e] = false;
        let sub = g.edge_subgraph(|id, _| alive[id as usize]);
        if is_planar(&sub) {
            alive[e] = true; // e is essential
        }
    }
    let core = g.edge_subgraph(|id, _| alive[id as usize]);
    // restrict to nodes with degree > 0
    let edges: Vec<(NodeId, NodeId)> = core.edges().iter().map(|e| (e.u, e.v)).collect();
    // relabel onto the support to recognize the shape
    let mut support: Vec<NodeId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    support.sort_unstable();
    support.dedup();
    let index = |v: NodeId| support.binary_search(&v).unwrap() as u32;
    let small = Graph::from_edges(
        support.len() as u32,
        &edges
            .iter()
            .map(|&(u, v)| (index(u), index(v)))
            .collect::<Vec<_>>(),
    );
    let kind = kuratowski_kind(&small)
        .expect("edge-minimal non-planar graph must be a Kuratowski subdivision");
    let branch_nodes = support
        .iter()
        .copied()
        .filter(|&v| edges.iter().filter(|&&(u, w)| u == v || w == v).count() >= 3)
        .collect();
    Some(KuratowskiWitness {
        kind,
        edges,
        branch_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;

    #[test]
    fn planar_graph_yields_none() {
        assert!(extract_kuratowski(&generators::grid(4, 4)).is_none());
    }

    #[test]
    fn k5_extracts_itself() {
        let w = extract_kuratowski(&generators::complete(5)).unwrap();
        assert_eq!(w.kind, KuratowskiKind::K5);
        assert_eq!(w.edges.len(), 10);
        assert_eq!(w.branch_nodes.len(), 5);
    }

    #[test]
    fn k33_extracts_itself() {
        let w = extract_kuratowski(&generators::complete_bipartite(3, 3)).unwrap();
        assert_eq!(w.kind, KuratowskiKind::K33);
        assert_eq!(w.edges.len(), 9);
        assert_eq!(w.branch_nodes.len(), 6);
    }

    #[test]
    fn subdivisions_recovered() {
        let w = extract_kuratowski(&generators::k5_subdivision(2)).unwrap();
        assert_eq!(w.kind, KuratowskiKind::K5);
        assert_eq!(w.edges.len(), 10 * 3, "10 branch paths of 3 edges each");
        let w = extract_kuratowski(&generators::k33_subdivision(1)).unwrap();
        assert_eq!(w.kind, KuratowskiKind::K33);
    }

    #[test]
    fn planted_kuratowski_found_in_host() {
        for seed in 0..4u64 {
            let g = generators::planted_kuratowski(30, seed % 2 == 0, 1, seed);
            let w = extract_kuratowski(&g).expect("planted non-planarity");
            // witness edges must be edges of g, and the witness alone must
            // be non-planar
            for &(u, v) in &w.edges {
                assert!(g.has_edge(u, v));
            }
            assert!(matches!(w.kind, KuratowskiKind::K5 | KuratowskiKind::K33));
        }
    }

    #[test]
    fn k6_extracts_some_kuratowski() {
        let w = extract_kuratowski(&generators::complete(6)).unwrap();
        assert!(matches!(w.kind, KuratowskiKind::K5 | KuratowskiKind::K33));
    }

    #[test]
    fn hypercube_q4_contains_k33_subdivision() {
        let w = extract_kuratowski(&generators::hypercube(4)).unwrap();
        // Q4 is triangle-free, so it cannot contain a K5 subdivision with
        // short paths; whatever is found must still be a valid witness
        assert!(w.edges.len() >= 9);
    }
}
