//! Keeps `docs/WIRE.md` honest: the worked hex examples in the spec
//! are parsed out of the document itself and round-tripped through
//! the real codec. If an encoding changes, these tests fail until the
//! spec's bytes are updated — the document cannot silently rot.

use dpc_graph::generators;
use dpc_runtime::get_uvarint;
use dpc_service::metrics::{HistogramSnapshot, SchemeStats, SlowLogEntry, StatsSnapshot};
use dpc_service::registry::SchemeId;
use dpc_service::store::{crc32, RecordKind, StoreRecord};
use dpc_service::wire::{self, Request, Response};
use dpc_service::StageSnapshot;

const SPEC: &str = include_str!("../../../docs/WIRE.md");

/// Document order of the ```hex blocks: §5.3 (Stats) comes before
/// §5.4 (SlowLog), which comes before §7 (Certify), which comes
/// before the three §8 replication examples.
const STATS_BLOCK: usize = 1;
const SLOWLOG_BLOCK: usize = 2;
const CERTIFY_BLOCK: usize = 3;
const STOREPUSH_BLOCK: usize = 4;
const STOREKEYS_BLOCK: usize = 5;
const STOREPUSHED_BLOCK: usize = 6;
/// §9's chunked-upload conversation (four request frames) and the
/// server's first ack, appended after the earlier blocks so their
/// indices stay stable.
const CHUNK_STREAM_BLOCK: usize = 7;
const CHUNK_ACK_BLOCK: usize = 8;
/// §10's interactive session (two request frames, then the two
/// response bodies) and §11's audit exchange, appended in document
/// order after the chunked-upload blocks.
const INTERACTIVE_STREAM_BLOCK: usize = 9;
const CHALLENGE_BLOCK: usize = 10;
const VERDICT_BLOCK: usize = 11;
const AUDIT_REQUEST_BLOCK: usize = 12;
const AUDIT_REPORT_BLOCK: usize = 13;

/// The hex bytes of the `index`-th ```hex fenced block in the spec
/// (1-based), comments (`# ...`) stripped.
fn spec_example_bytes(index: usize) -> Vec<u8> {
    let block = SPEC
        .split("```hex")
        .nth(index)
        .expect("docs/WIRE.md must contain enough ```hex blocks")
        .split("```")
        .next()
        .expect("unterminated ```hex block");
    let mut bytes = Vec::new();
    for line in block.lines() {
        let data = line.split('#').next().unwrap_or("");
        for tok in data.split_whitespace() {
            bytes.push(
                u8::from_str_radix(tok, 16)
                    .unwrap_or_else(|_| panic!("bad hex token {tok:?} in docs/WIRE.md")),
            );
        }
    }
    assert!(!bytes.is_empty(), "empty hex example in docs/WIRE.md");
    bytes
}

/// The snapshot the Stats example in docs/WIRE.md §5.1 describes.
fn spec_stats_snapshot() -> StatsSnapshot {
    StatsSnapshot {
        certify: 7,
        check: 2,
        gen: 1,
        soundness: 0,
        stats: 3,
        errors: 1,
        cache_hits: 5,
        cache_misses: 2,
        cache_evictions: 1,
        cache_entries: 1,
        cache_bytes: 4096,
        batches: 1,
        batched_certifies: 2,
        proves: 2,
        latency: HistogramSnapshot::default(),
        per_scheme: Vec::<SchemeStats>::new(),
        store_hits: 4,
        store_misses: 2,
        store_demotes: 1,
        store_promotes: 3,
        store_records: 6,
        store_bytes: 2048,
        store_segments: 1,
        store_write_errors: 0,
        conns_open: 2,
        conns_accepted: 9,
        accept_eagain: 3,
        idle_timeouts: 1,
        stages: StageSnapshot {
            queue_wait: HistogramSnapshot {
                buckets: vec![1, 3],
            },
            ..StageSnapshot::default()
        },
        queue_full_stalls: 1,
        read_interest_drops: 1,
        read_interest_restores: 1,
        inbox_wakeups: 4,
        queue_depth: 0,
        repl_push_merged: 2,
        repl_push_duplicates: 1,
        repl_pushed: 2,
        repl_sweeps: 4,
        repl_errors: 0,
        chunk_sessions: 0,
        chunk_chunks: 0,
        chunk_bytes: 0,
        chunk_aborts: 0,
        chunk_carry_peak: 0,
        delegated_proves: 0,
        delegated_errors: 0,
        outcome_merges: 0,
        audit_sweeps: 0,
        audit_sampled: 0,
        audit_failed: 0,
        audit_quarantined: 0,
        interactive_sessions: 0,
        interactive_rejects: 0,
    }
}

/// The slow-log entry the SlowLog example in docs/WIRE.md §5.4
/// describes.
fn spec_slowlog_entry() -> SlowLogEntry {
    SlowLogEntry {
        trace_id: (1 << 32) | 2,
        kind: 1,
        scheme: 0,
        age_us: 128,
        total_us: 1_000_000,
        read_decode_us: 2,
        queue_wait_us: 100,
        service_us: 999_000,
        reorder_wait_us: 8,
        write_flush_us: 890,
    }
}

#[test]
fn spec_hex_example_is_the_real_encoding() {
    let frame = spec_example_bytes(CERTIFY_BLOCK);
    // the spec's frame is exactly what the codec emits for C4 under
    // the bipartite scheme
    let body = wire::encode_certify_request(&generators::cycle(4), false, SchemeId::BIPARTITE);
    let mut expected = Vec::new();
    wire::write_frame(&mut expected, &body).unwrap();
    assert_eq!(
        frame, expected,
        "docs/WIRE.md worked example drifted from the codec"
    );
}

#[test]
fn spec_hex_example_decodes_as_documented() {
    let frame = spec_example_bytes(CERTIFY_BLOCK);
    // frame layer
    let mut cursor = std::io::Cursor::new(frame.as_slice());
    let body = wire::read_frame(&mut cursor)
        .expect("valid frame")
        .expect("non-empty stream");
    assert_eq!(cursor.position() as usize, frame.len(), "one whole frame");
    // request layer: Certify, C4, cache on, scheme 1
    match Request::decode(&body).expect("valid request") {
        Request::Certify {
            graph,
            bypass_cache,
            scheme,
            ..
        } => {
            assert!(!bypass_cache);
            assert_eq!(scheme, SchemeId::BIPARTITE);
            assert!(wire::graphs_equal(&graph, &generators::cycle(4)));
        }
        other => panic!("spec example decoded as {other:?}"),
    }
    // the compatibility claim at the end of the spec: dropping the
    // 3-byte extension block yields the version-1 planarity request
    let v1 = &body[..body.len() - 3];
    match Request::decode(v1).expect("v1 request") {
        Request::Certify { scheme, .. } => assert_eq!(scheme, SchemeId::PLANARITY),
        other => panic!("{other:?}"),
    }
    let v1_direct = wire::encode_certify_request(&generators::cycle(4), false, SchemeId::PLANARITY);
    assert_eq!(
        v1,
        v1_direct.as_slice(),
        "scheme-0 encoding is v1-identical"
    );
}

#[test]
fn spec_stats_example_is_the_real_encoding() {
    let doc = spec_example_bytes(STATS_BLOCK);
    let mut encoded = Vec::new();
    spec_stats_snapshot().encode_into(&mut encoded);
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §5.1 stats example drifted from the codec"
    );
    // and it decodes back to the documented counters
    let mut cursor = doc.as_slice();
    let back = StatsSnapshot::decode_from(&mut cursor).expect("valid snapshot");
    assert!(cursor.is_empty(), "one whole snapshot");
    assert_eq!(back, spec_stats_snapshot());
}

#[test]
fn spec_stats_example_keeps_the_v2_prefix_decodable() {
    // prefix-level compatibility (WIRE.md §5.1–5.2): decoding the
    // body with the v2 field order (14 counters, histogram,
    // per-scheme table) must yield exactly the documented v2 values,
    // with only the v3 store tail and the v4 connection tail beyond
    // that horizon
    let doc = spec_example_bytes(STATS_BLOCK);
    let mut buf = doc.as_slice();
    let mut v2 = [0u64; 14];
    for field in &mut v2 {
        *field = get_uvarint(&mut buf).expect("v2 counter");
    }
    assert_eq!(
        v2,
        [7, 2, 1, 0, 3, 1, 5, 2, 1, 1, 4096, 1, 2, 2],
        "v2 counter prefix"
    );
    let buckets = get_uvarint(&mut buf).expect("histogram length");
    assert_eq!(buckets, 0, "empty histogram");
    let rows = get_uvarint(&mut buf).expect("per-scheme rows");
    assert_eq!(rows, 0, "empty per-scheme table");
    // what remains is exactly the documented 8-field v3 store tail…
    let tail: Vec<u64> = (0..8)
        .map(|_| get_uvarint(&mut buf).expect("v3 field"))
        .collect();
    assert_eq!(tail, vec![4, 2, 1, 3, 6, 2048, 1, 0]);
    // …then the 4-field v4 connection tail…
    let tail: Vec<u64> = (0..4)
        .map(|_| get_uvarint(&mut buf).expect("v4 field"))
        .collect();
    assert_eq!(tail, vec![2, 9, 3, 1]);
    // …then the v5 tracing tail: five stage histograms (only
    // queue_wait is populated in the example) and five back-pressure
    // counters, and nothing else
    for (idx, expected) in [&[][..], &[1, 3], &[], &[], &[]].iter().enumerate() {
        let buckets = get_uvarint(&mut buf).expect("stage bucket count");
        let counts: Vec<u64> = (0..buckets)
            .map(|_| get_uvarint(&mut buf).expect("stage bucket"))
            .collect();
        assert_eq!(&counts, expected, "stage histogram {idx}");
    }
    let tail: Vec<u64> = (0..5)
        .map(|_| get_uvarint(&mut buf).expect("v5 counter"))
        .collect();
    assert_eq!(tail, vec![1, 1, 1, 4, 0]);
    // …then the v6 replication tail…
    let tail: Vec<u64> = (0..5)
        .map(|_| get_uvarint(&mut buf).expect("v6 counter"))
        .collect();
    assert_eq!(tail, vec![2, 1, 2, 4, 0]);
    // …then the v7 chunked-upload + distributed-proving tail (all
    // zero in the worked example)…
    let tail: Vec<u64> = (0..8)
        .map(|_| get_uvarint(&mut buf).expect("v7 counter"))
        .collect();
    assert_eq!(tail, vec![0; 8]);
    // …and finally the v8 audit + interactive tail (also all zero),
    // and nothing else
    let tail: Vec<u64> = (0..6)
        .map(|_| get_uvarint(&mut buf).expect("v8 counter"))
        .collect();
    assert_eq!(tail, vec![0; 6]);
    assert!(buf.is_empty());
}

/// The short Declined record the §8 replication examples describe:
/// keyed = scheme id 0 (no graph bytes), reason = "no".
fn spec_store_record() -> StoreRecord {
    StoreRecord {
        kind: RecordKind::Declined,
        keyed: vec![0x00],
        suffix: vec![0x02, b'n', b'o'],
    }
}

#[test]
fn spec_store_push_example_is_the_real_encoding() {
    let doc = spec_example_bytes(STOREPUSH_BLOCK);
    let encoded = wire::encode_store_push_request(std::slice::from_ref(&spec_store_record()));
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §8 StorePush example drifted from the codec"
    );
    match Request::decode(&doc).expect("valid request") {
        Request::StorePush { records } => assert_eq!(records, vec![spec_store_record()]),
        other => panic!("spec example decoded as {other:?}"),
    }
}

#[test]
fn spec_store_keys_example_is_the_real_encoding() {
    let doc = spec_example_bytes(STOREKEYS_BLOCK);
    // the documented key is the record's real content key
    let key = spec_store_record().key().0;
    assert_eq!(
        key, 0xd228cb69101a8caf78912b704e4a147f,
        "docs/WIRE.md §8 documents the wrong FNV-1a-128 key"
    );
    let encoded = Response::StoreKeys(vec![key]).encode();
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §8 StoreKeys example drifted from the codec"
    );
    match Response::decode(&doc).expect("valid response") {
        Response::StoreKeys(keys) => assert_eq!(keys, vec![key]),
        other => panic!("spec example decoded as {other:?}"),
    }
}

#[test]
fn spec_store_pushed_example_is_the_real_encoding() {
    let doc = spec_example_bytes(STOREPUSHED_BLOCK);
    let encoded = Response::StorePushed {
        merged: 1,
        duplicates: 0,
    }
    .encode();
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §8 StorePushed example drifted from the codec"
    );
    match Response::decode(&doc).expect("valid response") {
        Response::StorePushed { merged, duplicates } => {
            assert_eq!((merged, duplicates), (1, 0));
        }
        other => panic!("spec example decoded as {other:?}"),
    }
}

#[test]
fn spec_chunk_stream_example_is_the_real_encoding() {
    let doc = spec_example_bytes(CHUNK_STREAM_BLOCK);
    // the documented conversation: C4's graph encoding streamed under
    // session 7 in two chunks, split down the middle
    let mut payload = Vec::new();
    wire::encode_graph(&mut payload, &generators::cycle(4));
    let split = payload.len() / 2;
    let mut expected = Vec::new();
    for body in [
        wire::encode_chunk_begin_request(7, false, SchemeId::PLANARITY),
        wire::encode_chunk_request(7, 0, &payload[..split]),
        wire::encode_chunk_request(7, 1, &payload[split..]),
        wire::encode_chunk_end_request(7, 2, payload.len() as u64, crc32(&payload)),
    ] {
        wire::write_frame(&mut expected, &body).unwrap();
    }
    assert_eq!(
        doc, expected,
        "docs/WIRE.md §9 chunked-upload example drifted from the codec"
    );
    // and the documented frames decode to the documented requests
    let mut cursor = std::io::Cursor::new(doc.as_slice());
    let mut decoded = Vec::new();
    while let Some(body) = wire::read_frame(&mut cursor).expect("valid frame") {
        decoded.push(Request::decode(&body).expect("valid request"));
    }
    match decoded.as_slice() {
        [Request::GraphChunkBegin {
            session: 7,
            bypass_cache: false,
            scheme: SchemeId::PLANARITY,
        }, Request::GraphChunk {
            session: 7, seq: 0, ..
        }, Request::GraphChunk {
            session: 7, seq: 1, ..
        }, Request::GraphChunkEnd {
            session: 7,
            total_chunks: 2,
            total_bytes,
            crc,
        }] => {
            assert_eq!(*total_bytes, payload.len() as u64);
            assert_eq!(*crc, crc32(&payload));
        }
        other => panic!("spec example decoded as {other:?}"),
    }
}

#[test]
fn spec_chunk_ack_example_is_the_real_encoding() {
    let doc = spec_example_bytes(CHUNK_ACK_BLOCK);
    let encoded = Response::ChunkAck {
        session: 7,
        received: 0,
    }
    .encode();
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §9 ChunkAck example drifted from the codec"
    );
    match Response::decode(&doc).expect("valid response") {
        Response::ChunkAck {
            session: 7,
            received: 0,
        } => {}
        other => panic!("spec example decoded as {other:?}"),
    }
}

#[test]
fn spec_interactive_session_example_is_the_real_encoding() {
    use dpc_interactive::dmam::{challenge_from_seed, DmamPlanarity, DmamProtocol};
    let doc = spec_example_bytes(INTERACTIVE_STREAM_BLOCK);
    // the documented session: C4, session 1, seed 5, scheme 0 — the
    // commitment and response are the honest prover's, so the bytes
    // are reproducible from the protocol alone
    let g = generators::cycle(4);
    let proto = DmamPlanarity::new();
    let commit = proto.commit(&g).expect("C4 commits");
    let challenge = challenge_from_seed(5);
    let response = proto.respond(&g, &commit, challenge);
    let mut expected = Vec::new();
    for body in [
        wire::encode_interactive_begin_request(1, 5, &g, &commit, SchemeId::PLANARITY),
        wire::encode_interactive_respond_request(1, &response),
    ] {
        wire::write_frame(&mut expected, &body).unwrap();
    }
    assert_eq!(
        doc, expected,
        "docs/WIRE.md §10 interactive example drifted from the codec"
    );
    // and the documented frames decode to the documented requests
    let mut cursor = std::io::Cursor::new(doc.as_slice());
    let mut decoded = Vec::new();
    while let Some(body) = wire::read_frame(&mut cursor).expect("valid frame") {
        decoded.push(Request::decode(&body).expect("valid request"));
    }
    match decoded.as_slice() {
        [Request::InteractiveBegin {
            session: 1,
            seed: 5,
            graph,
            commit: c,
            scheme: SchemeId::PLANARITY,
        }, Request::InteractiveRespond {
            session: 1,
            response: r,
        }] => {
            assert!(wire::graphs_equal(graph, &g));
            // Assignment has no PartialEq; byte-compare the encodings
            let enc = |a: &dpc_core::scheme::Assignment| {
                let mut out = Vec::new();
                a.encode_into(&mut out);
                out
            };
            assert_eq!(enc(c), enc(&commit));
            assert_eq!(enc(r), enc(&response));
        }
        other => panic!("spec example decoded as {other:?}"),
    }

    // the Challenge the server answers the Begin with
    let doc = spec_example_bytes(CHALLENGE_BLOCK);
    assert_eq!(
        challenge, 0x49d55178ca54cf69,
        "docs/WIRE.md §10 documents the wrong challenge for seed 5"
    );
    let encoded = Response::Challenge {
        session: 1,
        challenge,
    }
    .encode();
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §10 Challenge example drifted from the codec"
    );

    // and the closing Verdict: the documented proof-size maxima are
    // the honest run's, and the soundness bound is 1e6 - 1e6/max-degree
    let doc = spec_example_bytes(VERDICT_BLOCK);
    let outcome = dpc_interactive::dmam::run_forged(&proto, &g, challenge, &commit, &response);
    assert!(outcome.all_accept(), "honest C4 session must accept");
    let encoded = Response::Verdict {
        session: 1,
        challenge,
        accept: true,
        reject_count: 0,
        nodes: 4,
        max_commit_bits: outcome.max_commit_bits as u64,
        max_response_bits: outcome.max_response_bits as u64,
        soundness_ppm: 500_000,
    }
    .encode();
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §10 Verdict example drifted from the codec"
    );
    match Response::decode(&doc).expect("valid response") {
        Response::Verdict {
            accept: true,
            soundness_ppm: 500_000,
            ..
        } => {}
        other => panic!("spec example decoded as {other:?}"),
    }
}

#[test]
fn spec_audit_examples_are_the_real_encoding() {
    let doc = spec_example_bytes(AUDIT_REQUEST_BLOCK);
    let encoded = wire::encode_audit_request(16, 9);
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §11 Audit example drifted from the codec"
    );
    match Request::decode(&doc).expect("valid request") {
        Request::Audit {
            samples: 16,
            seed: 9,
        } => {}
        other => panic!("spec example decoded as {other:?}"),
    }

    let doc = spec_example_bytes(AUDIT_REPORT_BLOCK);
    let encoded = Response::AuditReport {
        sampled: 16,
        failed: 1,
        quarantined: 1,
    }
    .encode();
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §11 AuditReport example drifted from the codec"
    );
    match Response::decode(&doc).expect("valid response") {
        Response::AuditReport {
            sampled: 16,
            failed: 1,
            quarantined: 1,
        } => {}
        other => panic!("spec example decoded as {other:?}"),
    }
}

#[test]
fn spec_slowlog_example_is_the_real_encoding() {
    let doc = spec_example_bytes(SLOWLOG_BLOCK);
    let encoded = Response::SlowLog(vec![spec_slowlog_entry()]).encode();
    assert_eq!(
        doc, encoded,
        "docs/WIRE.md §5.4 slow-log example drifted from the codec"
    );
    match Response::decode(&doc).expect("valid response") {
        Response::SlowLog(entries) => {
            assert_eq!(entries, vec![spec_slowlog_entry()]);
            // the documented invariant: total is the sum of the stages
            let e = &entries[0];
            assert_eq!(
                e.total_us,
                e.read_decode_us
                    + e.queue_wait_us
                    + e.service_us
                    + e.reorder_wait_us
                    + e.write_flush_us
            );
        }
        other => panic!("spec example decoded as {other:?}"),
    }
}
