//! The proof-labeling-scheme abstraction.

use dpc_graph::Graph;
use dpc_runtime::{NodeCtx, Payload};
use std::fmt;

/// A certificate assignment: one payload per node.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// `certs[v]` is the certificate handed to node `v`.
    pub certs: Vec<Payload>,
}

impl Assignment {
    /// Assignment of empty certificates for `n` nodes.
    pub fn empty(n: usize) -> Self {
        Assignment {
            certs: vec![Payload::empty(); n],
        }
    }

    /// Size of the largest certificate, in bits.
    pub fn max_bits(&self) -> usize {
        self.certs.iter().map(|c| c.bit_len).max().unwrap_or(0)
    }

    /// Average certificate size in bits.
    pub fn avg_bits(&self) -> f64 {
        if self.certs.is_empty() {
            return 0.0;
        }
        self.certs.iter().map(|c| c.bit_len as f64).sum::<f64>() / self.certs.len() as f64
    }

    /// Total bits across all certificates.
    pub fn total_bits(&self) -> usize {
        self.certs.iter().map(|c| c.bit_len).sum()
    }
}

/// Why the honest prover declined to produce certificates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveError {
    /// The instance is not in the certified class (e.g. the graph is not
    /// planar and the scheme certifies planarity). Soundness in action:
    /// there is nothing valid to hand out.
    NotInClass(&'static str),
    /// The model assumes connected networks.
    NotConnected,
    /// The scheme needs auxiliary input it was not given (e.g. a
    /// Hamiltonian-path witness for path-outerplanarity).
    MissingWitness(&'static str),
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProveError::NotInClass(c) => write!(f, "instance is not in the class: {c}"),
            ProveError::NotConnected => write!(f, "the network must be connected"),
            ProveError::MissingWitness(w) => write!(f, "missing witness: {w}"),
        }
    }
}

impl std::error::Error for ProveError {}

/// A proof-labeling scheme: centralized prover + 1-round local verifier.
///
/// The verifier is *stateless by node*: it sees the node's initial
/// knowledge ([`NodeCtx`]), its own certificate, and the certificates of
/// its neighbors in port order — exactly the information available after
/// the single communication round of the PLS model.
pub trait ProofLabelingScheme {
    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;

    /// Honest prover: certificate assignment for a yes-instance.
    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError>;

    /// Local verification at one node after the communication round.
    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_stats() {
        let mut a = Assignment::empty(3);
        assert_eq!(a.max_bits(), 0);
        let mut w = dpc_runtime::BitWriter::new();
        w.write_bits(0b1010, 4);
        a.certs[1] = Payload::from_writer(w);
        assert_eq!(a.max_bits(), 4);
        assert_eq!(a.total_bits(), 4);
        assert!((a.avg_bits() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn prove_error_display() {
        let e = ProveError::NotInClass("planar graphs");
        assert!(e.to_string().contains("planar"));
        assert_eq!(
            ProveError::NotConnected.to_string(),
            "the network must be connected"
        );
    }
}
