//! Distributed interactive proofs: the dMAM baseline the paper improves
//! on.
//!
//! Naor, Parter and Yogev (SODA 2020) gave a **dMAM** protocol for
//! planarity — Merlin commits, Arthur draws randomness, Merlin responds,
//! then one verification round — with `O(log n)`-bit messages. The paper
//! reproduced here (Theorem 1) shows one deterministic Merlin message
//! suffices. This crate provides the comparison side:
//!
//! * [`fingerprint`] — polynomial fingerprints over the Mersenne prime
//!   `2^61 − 1` (random-evaluation equality testing, the workhorse of
//!   randomized distributed proofs);
//! * [`dmam`] — a generic dMAM runner plus [`dmam::DmamPlanarity`], a
//!   concrete 3-interaction randomized protocol for planarity whose
//!   certificates are smaller than the PLS's but whose soundness is
//!   probabilistic. **Substitution note** (see DESIGN.md): NPY's generic
//!   RAM-compiler is its own paper; our baseline preserves the measured
//!   interface — 3 interactions, public coins, `O(log n)` bits,
//!   one-sided error — by challenge-sampling the PLS's edge
//!   certificates rather than compiling a sequential execution.

pub mod dmam;
pub mod fingerprint;
