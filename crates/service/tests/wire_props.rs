//! Property tests for the wire codec: `decode(encode(x)) == x` across
//! every generator family, including shuffled-identifier variants.

use dpc_core::harness::certify_pls;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_graph::{generators, Graph};
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::wire::{self, Request, Response};
use proptest::prelude::*;

/// One representative of every generator family (the shared
/// cross-crate table — see `generators::sample_family`).
fn family_graph(which: u32, n: u32, seed: u64) -> Graph {
    generators::sample_family(which, n, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Graph wire encoding round-trips every family exactly, with
    /// default and with shuffled identifiers.
    #[test]
    fn graph_codec_identity(which in 0u32..generators::SAMPLE_FAMILY_COUNT, n in 5u32..40, seed in 0u64..1000) {
        let g = family_graph(which, n, seed);
        for g in [g.clone(), generators::shuffle_ids(&g, seed)] {
            let mut out = Vec::new();
            wire::encode_graph(&mut out, &g);
            let mut cursor = out.as_slice();
            let h = wire::decode_graph(&mut cursor).unwrap();
            prop_assert!(cursor.is_empty(), "full consumption");
            prop_assert!(wire::graphs_equal(&g, &h));
            // encoding is canonical: re-encoding the decoded graph is
            // byte-identical
            let mut again = Vec::new();
            wire::encode_graph(&mut again, &h);
            prop_assert_eq!(out, again);
        }
    }

    /// Requests round-trip through the frame body codec — for *every*
    /// scheme id the standard registry serves, plus an unregistered id
    /// (the codec is registry-agnostic; routing unknown ids is the
    /// server's job).
    #[test]
    fn request_codec_identity(which in 0u32..generators::SAMPLE_FAMILY_COUNT, n in 5u32..30, seed in 0u64..500) {
        let g = family_graph(which, n, seed);
        let registry = SchemeRegistry::standard();
        let mut ids: Vec<SchemeId> =
            registry.entries().iter().map(|e| e.id).collect();
        ids.push(SchemeId(4321)); // unregistered but well-formed
        for scheme in ids {
            let requests = [
                Request::Certify { graph: g.clone(), bypass_cache: seed.is_multiple_of(2), cached_only: false, scheme },
                Request::Check { graph: g.clone(), scheme },
                Request::Gen { family: "grid".into(), n, seed, scheme },
                Request::SoundnessProbe { graph: g.clone(), seed, scheme },
                Request::Stats,
            ];
            for req in requests {
                let back = Request::decode(&req.encode()).unwrap();
                prop_assert_eq!(req.scheme(), back.scheme(), "scheme changed in flight");
                match (&req, &back) {
                    (Request::Certify { graph: a, bypass_cache: fa, .. },
                     Request::Certify { graph: b, bypass_cache: fb, .. }) => {
                        prop_assert!(wire::graphs_equal(a, b));
                        prop_assert_eq!(fa, fb);
                    }
                    (Request::Check { graph: a, .. }, Request::Check { graph: b, .. }) => {
                        prop_assert!(wire::graphs_equal(a, b));
                    }
                    (Request::Gen { family: a, n: na, seed: sa, .. },
                     Request::Gen { family: b, n: nb, seed: sb, .. }) => {
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(na, nb);
                        prop_assert_eq!(sa, sb);
                    }
                    (Request::SoundnessProbe { graph: a, seed: sa, .. },
                     Request::SoundnessProbe { graph: b, seed: sb, .. }) => {
                        prop_assert!(wire::graphs_equal(a, b));
                        prop_assert_eq!(sa, sb);
                    }
                    (Request::Stats, Request::Stats) => {}
                    _ => prop_assert!(false, "kind changed in flight"),
                }
            }
        }
    }

    /// Certified responses round-trip with byte-identical certificates.
    #[test]
    fn certified_response_identity(n in 6u32..40, seed in 0u64..500) {
        let g = generators::stacked_triangulation(n, seed);
        let certified = certify_pls(&PlanarityScheme::new(), &g).unwrap();
        let resp = Response::Certified {
            cached: seed.is_multiple_of(2),
            outcome: certified.outcome.clone(),
            assignment: certified.assignment.clone(),
        };
        match Response::decode(&resp.encode()).unwrap() {
            Response::Certified { cached, outcome, assignment } => {
                prop_assert_eq!(cached, seed.is_multiple_of(2));
                prop_assert_eq!(outcome, certified.outcome);
                prop_assert_eq!(
                    assignment.certs.len(),
                    certified.assignment.certs.len()
                );
                for (a, b) in assignment.certs.iter().zip(&certified.assignment.certs) {
                    prop_assert_eq!(a.bit_len, b.bit_len);
                    prop_assert_eq!(a.as_bytes(), b.as_bytes());
                }
            }
            other => prop_assert!(false, "kind changed: {:?}", other),
        }
    }

    /// Truncating any encoded request never panics, only errors —
    /// including truncation inside the scheme-id extension block.
    #[test]
    fn truncation_is_an_error_not_a_panic(which in 0u32..generators::SAMPLE_FAMILY_COUNT, n in 5u32..25, seed in 0u64..200) {
        let g = family_graph(which, n, seed);
        let body = Request::Certify {
            graph: g.clone(),
            bypass_cache: false,
            cached_only: false,
            scheme: SchemeId::PLANARITY,
        }.encode();
        for cut in 0..body.len().min(48) {
            prop_assert!(Request::decode(&body[..cut]).is_err());
        }
        // with a scheme-id extension the block sits at the tail:
        // cutting *inside* it (tag without length, length without
        // payload) must error; cutting the whole block off falls back
        // to a valid v1 planarity request — that is the compatibility
        // rule, not a bug
        let ext = Request::Certify {
            graph: g,
            bypass_cache: false,
            cached_only: false,
            scheme: SchemeId::MOD_COUNTER,
        }.encode();
        for cut in ext.len() - 2..ext.len() {
            prop_assert!(Request::decode(&ext[..cut]).is_err());
        }
        let v1 = Request::decode(&ext[..ext.len() - 3]).unwrap();
        prop_assert_eq!(v1.scheme(), Some(SchemeId::PLANARITY));
        // random corruption of the tag byte
        let mut corrupt = body.clone();
        corrupt[0] = 99;
        prop_assert!(Request::decode(&corrupt).is_err());
    }
}

#[test]
fn all_other_response_kinds_roundtrip() {
    use dpc_service::wire::{CheckVerdict, SoundnessLine};
    let responses = vec![
        Response::Error("nope".into()),
        Response::Declined {
            cached: true,
            reason: "instance is not in the class: planar graphs".into(),
        },
        Response::Checked(CheckVerdict::Planar { faces: 7, genus: 0 }),
        Response::Checked(CheckVerdict::NonPlanar {
            k5: false,
            branch_nodes: vec![1, 5, 9, 2, 4, 8],
            witness_edges: 12,
        }),
        Response::Generated(generators::grid(4, 4)),
        Response::Soundness(vec![
            SoundnessLine {
                attack: "garbage".into(),
                rejects: Some(14),
            },
            SoundnessLine {
                attack: "replay-planarized".into(),
                rejects: None,
            },
        ]),
    ];
    for resp in responses {
        let back = Response::decode(&resp.encode()).unwrap();
        assert_eq!(format!("{resp:?}"), format!("{back:?}"));
    }
}
