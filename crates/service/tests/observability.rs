//! End-to-end tests of the tracing plane: per-stage histograms, the
//! slow-request log, and the Prometheus scrape endpoint.

use dpc_service::{CheckOptions, Client, ServeConfig, ServerHandle, StatsSnapshot};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn serve(cfg: ServeConfig) -> ServerHandle {
    dpc_service::serve("127.0.0.1:0", cfg).expect("bind loopback")
}

/// Stage recording trails the client's receive (write_flush is
/// stamped after the bytes are handed to the kernel), so assertions
/// about stage counts poll until they settle.
fn wait_for<F: FnMut() -> bool>(mut done: F, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn stage_counts(s: &StatsSnapshot) -> Vec<(&'static str, u64)> {
    s.stages
        .named()
        .iter()
        .map(|(name, h)| (*name, h.count()))
        .collect()
}

/// The sum property behind WIRE.md §5.3: every request whose response
/// has been fully written contributes exactly one observation to
/// every stage histogram — none double-counted, none skipped.
fn stage_counts_sum_to_completed_requests(event_loop: bool) {
    let handle = serve(ServeConfig {
        event_loop,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = dpc_graph::generators::grid(5, 5);
    let requests = 24u64;
    for i in 0..requests {
        // a mix of kinds, some pipelined: certify (cache miss then
        // hits), check, and the occasional stats poll
        match i % 3 {
            0 => {
                client.certify(&g, false).unwrap();
            }
            1 => {
                client.check(&g, CheckOptions::new()).unwrap();
            }
            _ => {
                client.stats().unwrap();
            }
        }
    }
    wait_for(
        || {
            let s = handle.stats();
            stage_counts(&s).iter().all(|&(_, c)| c == requests)
        },
        "every stage count to reach the request count",
    );
    let s = handle.stats();
    for (name, count) in stage_counts(&s) {
        assert_eq!(count, requests, "stage {name} count");
    }
    // the queue-wait and write-flush histograms are the acceptance
    // gate for "tracing is actually populated"
    assert_eq!(s.stages.queue_wait.count(), requests);
    assert_eq!(s.stages.write_flush.count(), requests);
    handle.shutdown();
}

#[test]
fn stage_counts_sum_threaded() {
    stage_counts_sum_to_completed_requests(false);
}

#[test]
fn stage_counts_sum_event_loop() {
    // falls back to the threaded front end where epoll is unavailable,
    // which still has to uphold the property
    stage_counts_sum_to_completed_requests(true);
}

#[test]
fn slow_log_captures_a_slow_prove_with_its_breakdown() {
    // threshold 1 ms: a fresh prove of a ~900-node graph crosses it,
    // the cached stats polls around it do not
    let handle = serve(ServeConfig {
        slow_ms: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = dpc_graph::generators::grid(30, 30);
    client.certify(&g, true).unwrap();
    wait_for(
        || !handle.slowlog().is_empty(),
        "the slow prove to reach the slow log",
    );
    let entries = handle.slowlog();
    let e = &entries[0];
    assert_eq!(e.kind_name(), "certify");
    assert_eq!(e.scheme, 0, "planarity is scheme 0");
    assert!(e.total_us >= 1000, "crossed the 1 ms threshold: {e:?}");
    assert_eq!(
        e.total_us,
        e.read_decode_us + e.queue_wait_us + e.service_us + e.reorder_wait_us + e.write_flush_us,
        "total is the sum of the stages: {e:?}"
    );
    assert!(
        e.service_us > e.total_us / 2,
        "a slow prove is service-dominated: {e:?}"
    );
    // the same entries come back over the wire, newest first
    let wired = client.slowlog().unwrap();
    assert_eq!(wired.len(), entries.len());
    assert_eq!(wired[0].trace_id, e.trace_id);
    assert_eq!(wired[0].total_us, e.total_us);
    handle.shutdown();
}

#[test]
fn slow_log_threshold_zero_disables_capture() {
    let handle = serve(ServeConfig {
        slow_ms: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = dpc_graph::generators::grid(30, 30);
    client.certify(&g, true).unwrap();
    // give the write-side trace close a moment, then confirm nothing
    // was retained
    std::thread::sleep(Duration::from_millis(50));
    assert!(handle.slowlog().is_empty());
    assert!(client.slowlog().unwrap().is_empty());
    handle.shutdown();
}

/// One HTTP GET against the scrape endpoint, returning the full
/// response (status line through body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: dpc\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let handle = serve(ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    });
    let metrics_addr = handle.metrics_addr().expect("metrics endpoint bound");
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = dpc_graph::generators::grid(6, 6);
    client.certify(&g, false).unwrap();
    client.certify(&g, false).unwrap();
    wait_for(
        || handle.stats().stages.write_flush.count() >= 2,
        "the certifies' traces to close",
    );
    let resp = http_get(metrics_addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
    assert!(
        resp.contains("text/plain; version=0.0.4"),
        "Prometheus content type: {resp}"
    );
    assert!(resp.contains("# TYPE dpc_requests_total counter"), "{resp}");
    assert!(
        resp.contains("dpc_requests_total{kind=\"certify\"} 2"),
        "{resp}"
    );
    assert!(
        resp.contains("dpc_stage_duration_us_count{stage=\"queue_wait\"} 2"),
        "{resp}"
    );
    assert!(
        resp.contains("dpc_stage_duration_us_count{stage=\"write_flush\"} 2"),
        "{resp}"
    );
    assert!(resp.contains("dpc_conns_open 1"), "{resp}");
    // unknown paths 404, non-GET methods 405, and neither kills the
    // endpoint for the next scrape
    assert!(http_get(metrics_addr, "/nope").starts_with("HTTP/1.1 404"));
    let mut stream = TcpStream::connect(metrics_addr).unwrap();
    write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
    let mut resp = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    assert!(http_get(metrics_addr, "/metrics").starts_with("HTTP/1.1 200"));
    handle.shutdown();
}
