//! Graph substrate for the PODC 2020 planarity-certification reproduction.
//!
//! This crate provides everything the certification layers need from a
//! graph library, built from scratch:
//!
//! * [`Graph`]: a compact simple-graph representation with stable node
//!   indices and per-node network identifiers (the `id(v)` of the paper's
//!   model section).
//! * [`generators`]: workload generators — planar families (trees, grids,
//!   stacked triangulations, outerplanar, series-parallel, ...), non-planar
//!   families (Kuratowski subdivisions planted in planar hosts, dense
//!   `G(n,m)`, complete (bipartite) graphs, hypercubes), and the utility
//!   transformations used by the experiments.
//! * [`traversal`]: BFS/DFS, connectivity, spanning trees.
//! * [`degeneracy`]: smallest-last (degeneracy) orderings — planar graphs
//!   are 5-degenerate, the key to distributing edge-certificates evenly
//!   (Section 3.3 of the paper).
//! * [`canon`]: canonical (insertion-order-independent) edge lists and
//!   deterministic 128-bit content hashes — the cache keys of the
//!   certification service.
//! * [`minors`]: minor machinery used to *validate* the lower-bound
//!   instances of Section 4 (contractions, series-parallel reduction for
//!   `K4`-minor-freeness, a branching minor search for small graphs, and
//!   Kuratowski-subdivision recognition).
//!
//! # Example
//!
//! ```
//! use dpc_graph::{Graph, generators};
//!
//! let g = generators::grid(4, 5);
//! assert_eq!(g.node_count(), 20);
//! assert!(g.is_connected());
//! ```

pub mod biconnectivity;
pub mod canon;
pub mod degeneracy;
pub mod generators;
pub mod graph;
pub mod graph6;
pub mod minors;
pub mod traversal;

pub use graph::{Edge, EdgeId, Graph, GraphBuilder, GraphError, NodeId};
