//! dMAM protocols: Merlin commits, Arthur broadcasts a public coin,
//! Merlin responds, then one verification round.
//!
//! [`DmamPlanarity`] is the concrete baseline for experiment E10: a
//! 3-interaction, public-coin protocol for planarity whose per-node
//! messages are smaller than the PLS certificates of Theorem 1, at the
//! price of randomized soundness. Merlin's commitment carries only the
//! spanning tree and the node's `fmin/fmax` in the DFS mapping; the
//! challenge selects, per node, **one** incident edge whose
//! interval-certificate Merlin must open in the response; the verifier
//! re-runs the corresponding subset of Algorithm 2's checks plus a
//! pairwise laminarity test on every interval it sees.

use dpc_core::scheme::{Assignment, ProveError};
use dpc_core::schemes::tree_base::{build_tree_certs, check_tree, TreeCert};
use dpc_graph::{Graph, NodeId};
use dpc_planar::tembed::t_embedding;
use dpc_runtime::bits::{BitReader, BitWriter, DecodeError};
use dpc_runtime::{run_protocol, NodeCtx, Payload, Protocol, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fingerprint::derive;

/// A distributed Merlin–Arthur–Merlin protocol with one public coin.
pub trait DmamProtocol {
    /// Protocol name.
    fn name(&self) -> &'static str;

    /// Interaction 1: Merlin's commitment (one payload per node).
    fn commit(&self, g: &Graph) -> Result<Assignment, ProveError>;

    /// Interaction 3: Merlin's response to the public coin.
    fn respond(&self, g: &Graph, commit: &Assignment, challenge: u64) -> Assignment;

    /// Local verification after one communication round.
    #[allow(clippy::too_many_arguments)]
    fn verify(
        &self,
        ctx: &NodeCtx,
        challenge: u64,
        own_commit: &Payload,
        own_resp: &Payload,
        nbr_commits: &[Payload],
        nbr_resps: &[Payload],
    ) -> bool;
}

/// Outcome of a dMAM execution.
#[derive(Debug, Clone)]
pub struct DmamOutcome {
    /// Per-node verdicts.
    pub verdicts: Vec<bool>,
    /// Largest commitment, in bits.
    pub max_commit_bits: usize,
    /// Largest response, in bits.
    pub max_response_bits: usize,
    /// Bits of public randomness.
    pub challenge_bits: usize,
    /// Number of prover–verifier interactions (M, A, M).
    pub interactions: usize,
}

impl DmamOutcome {
    /// True iff every node accepted.
    pub fn all_accept(&self) -> bool {
        self.verdicts.iter().all(|&b| b)
    }

    /// Number of rejecting nodes.
    pub fn reject_count(&self) -> usize {
        self.verdicts.iter().filter(|&&b| !b).count()
    }
}

struct DmamRound<'a, D> {
    proto: &'a D,
    challenge: u64,
    commit: &'a Assignment,
    resp: &'a Assignment,
}

struct DmamState {
    payload: Payload,
}

fn frame(commit: &Payload, resp: &Payload) -> Payload {
    let mut w = BitWriter::new();
    w.write_varint(commit.bit_len as u64);
    let mut r = commit.reader();
    for _ in 0..commit.bit_len {
        w.write_bool(r.read_bool().unwrap());
    }
    let mut r = resp.reader();
    for _ in 0..resp.bit_len {
        w.write_bool(r.read_bool().unwrap());
    }
    Payload::from_writer(w)
}

fn unframe(p: &Payload) -> Option<(Payload, Payload)> {
    let mut r = p.reader();
    let cbits = r.read_varint().ok()? as usize;
    if cbits > r.remaining() {
        return None;
    }
    let mut wc = BitWriter::new();
    for _ in 0..cbits {
        wc.write_bool(r.read_bool().ok()?);
    }
    let mut wr = BitWriter::new();
    while r.remaining() > 0 {
        wr.write_bool(r.read_bool().ok()?);
    }
    Some((Payload::from_writer(wc), Payload::from_writer(wr)))
}

impl<'a, D: DmamProtocol> Protocol for DmamRound<'a, D> {
    type State = DmamState;

    fn init(&self, ctx: &NodeCtx) -> DmamState {
        DmamState {
            payload: frame(
                &self.commit.certs[ctx.node as usize],
                &self.resp.certs[ctx.node as usize],
            ),
        }
    }

    fn message(&self, st: &DmamState, _round: usize) -> Payload {
        st.payload.clone()
    }

    fn receive(&self, st: &mut DmamState, ctx: &NodeCtx, inbox: &[Payload], _round: usize) -> Step {
        let Some((own_c, own_r)) = unframe(&st.payload) else {
            return Step::Output(false);
        };
        let mut ncs = Vec::with_capacity(inbox.len());
        let mut nrs = Vec::with_capacity(inbox.len());
        for p in inbox {
            match unframe(p) {
                Some((c, r)) => {
                    ncs.push(c);
                    nrs.push(r);
                }
                None => return Step::Output(false),
            }
        }
        Step::Output(
            self.proto
                .verify(ctx, self.challenge, &own_c, &own_r, &ncs, &nrs),
        )
    }
}

/// Arthur's public coin as a pure function of the session seed. Both
/// the offline harness ([`run_dmam`]) and the wire session derive the
/// challenge through this one helper, so an interactive verdict is
/// reproducible from the seed logged with its trace.
pub fn challenge_from_seed(seed: u64) -> u64 {
    StdRng::seed_from_u64(seed).gen()
}

/// Runs the honest protocol end to end.
pub fn run_dmam<D: DmamProtocol>(
    proto: &D,
    g: &Graph,
    seed: u64,
) -> Result<DmamOutcome, ProveError> {
    let commit = proto.commit(g)?;
    let challenge = challenge_from_seed(seed);
    let resp = proto.respond(g, &commit, challenge);
    Ok(run_forged(proto, g, challenge, &commit, &resp))
}

/// Runs the verification round under arbitrary (possibly forged)
/// commitment and response.
pub fn run_forged<D: DmamProtocol>(
    proto: &D,
    g: &Graph,
    challenge: u64,
    commit: &Assignment,
    resp: &Assignment,
) -> DmamOutcome {
    let round = DmamRound {
        proto,
        challenge,
        commit,
        resp,
    };
    let report = run_protocol(&round, g, 1);
    DmamOutcome {
        verdicts: report.verdicts.iter().map(|v| v.unwrap_or(false)).collect(),
        max_commit_bits: commit.max_bits(),
        max_response_bits: resp.max_bits(),
        challenge_bits: 64,
        interactions: 3,
    }
}

// ---------------------------------------------------------------------------
// The planarity baseline
// ---------------------------------------------------------------------------

type Iv = (u64, u64);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Commit {
    tree: TreeCert,
    fmin: u64,
    fmax: u64,
}

impl Commit {
    fn encode(&self) -> Payload {
        let mut w = BitWriter::new();
        self.tree.encode(&mut w);
        w.write_varint(self.fmin);
        w.write_varint(self.fmax);
        Payload::from_writer(w)
    }

    fn decode(p: &Payload) -> Option<Commit> {
        let mut r = p.reader();
        let tree = TreeCert::decode(&mut r).ok()?;
        let fmin = r.read_varint().ok()?;
        let fmax = r.read_varint().ok()?;
        (r.remaining() == 0).then_some(Commit { tree, fmin, fmax })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Opening {
    Tree([Iv; 4]),
    Cotree { i: u64, ii: Iv, j: u64, ij: Iv },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Response {
    /// Identifier of the other endpoint of the opened edge.
    other_id: u64,
    opening: Opening,
}

fn write_iv(w: &mut BitWriter, iv: Iv) {
    w.write_varint(iv.0);
    w.write_varint(iv.1);
}

fn read_iv(r: &mut BitReader<'_>) -> Result<Iv, DecodeError> {
    Ok((r.read_varint()?, r.read_varint()?))
}

impl Response {
    fn encode(&self) -> Payload {
        let mut w = BitWriter::new();
        w.write_varint(self.other_id);
        match &self.opening {
            Opening::Tree(ivs) => {
                w.write_bool(true);
                for &iv in ivs {
                    write_iv(&mut w, iv);
                }
            }
            Opening::Cotree { i, ii, j, ij } => {
                w.write_bool(false);
                w.write_varint(*i);
                write_iv(&mut w, *ii);
                w.write_varint(*j);
                write_iv(&mut w, *ij);
            }
        }
        Payload::from_writer(w)
    }

    fn decode(p: &Payload) -> Option<Response> {
        let mut r = p.reader();
        let other_id = r.read_varint().ok()?;
        let opening = if r.read_bool().ok()? {
            let mut ivs = [(0, 0); 4];
            for iv in &mut ivs {
                *iv = read_iv(&mut r).ok()?;
            }
            Opening::Tree(ivs)
        } else {
            Opening::Cotree {
                i: r.read_varint().ok()?,
                ii: read_iv(&mut r).ok()?,
                j: r.read_varint().ok()?,
                ij: read_iv(&mut r).ok()?,
            }
        };
        (r.remaining() == 0).then_some(Response { other_id, opening })
    }
}

/// Which incident edge the challenge opens at a node of identifier `id`
/// and degree `deg`.
pub fn queried_port(challenge: u64, id: u64, deg: usize) -> usize {
    (derive(challenge, id) % deg as u64) as usize
}

/// The dMAM planarity baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DmamPlanarity;

impl DmamPlanarity {
    /// Creates the protocol.
    pub fn new() -> Self {
        DmamPlanarity
    }
}

impl DmamProtocol for DmamPlanarity {
    fn name(&self) -> &'static str {
        "dmam-planarity"
    }

    fn commit(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        if g.node_count() < 2 {
            return Ok(Assignment::empty(g.node_count()));
        }
        let rot = dpc_planar::lr::planarity(g)
            .into_embedding()
            .ok_or(ProveError::NotInClass("planar graphs"))?;
        let tree = dpc_graph::traversal::bfs_spanning_tree(g, 0);
        let te = t_embedding(g, &rot, &tree).expect("laminar by Lemma 3");
        let tcs = build_tree_certs(g, &tree);
        let certs = g
            .nodes()
            .map(|v| {
                Commit {
                    tree: tcs[v as usize],
                    fmin: te.fmin(v) as u64,
                    fmax: te.fmax(v) as u64,
                }
                .encode()
            })
            .collect();
        Ok(Assignment { certs })
    }

    fn respond(&self, g: &Graph, _commit: &Assignment, challenge: u64) -> Assignment {
        // honest Merlin: recompute the embedding (deterministic) and open
        // the queried edge of every node
        let Some(rot) = dpc_planar::lr::planarity(g).into_embedding() else {
            return Assignment::empty(g.node_count());
        };
        if g.node_count() < 2 {
            return Assignment::empty(g.node_count());
        }
        let tree = dpc_graph::traversal::bfs_spanning_tree(g, 0);
        let te = t_embedding(g, &rot, &tree).expect("laminar by Lemma 3");
        let tree_mask = tree.tree_edge_mask(g);
        let iv = |x: u64| -> Iv {
            let (a, b) = te.interval(x as u32);
            (a as u64, b as u64)
        };
        let certs = g
            .nodes()
            .map(|v| {
                let port = queried_port(challenge, g.id_of(v), g.degree(v));
                let (w, eid) = g.adjacency(v)[port];
                let opening = if tree_mask[eid as usize] {
                    let c: NodeId = if tree.parent[v as usize] == Some(w) {
                        v
                    } else {
                        w
                    };
                    let (cmin, cmax) = (te.fmin(c) as u64, te.fmax(c) as u64);
                    Opening::Tree([iv(cmin - 1), iv(cmin), iv(cmax), iv(cmax + 1)])
                } else {
                    let ch = te.chords[te.chord_of[eid as usize] as usize];
                    Opening::Cotree {
                        i: ch.a as u64,
                        ii: iv(ch.a as u64),
                        j: ch.b as u64,
                        ij: iv(ch.b as u64),
                    }
                };
                Response {
                    other_id: g.id_of(w),
                    opening,
                }
                .encode()
            })
            .collect();
        Assignment { certs }
    }

    fn verify(
        &self,
        ctx: &NodeCtx,
        challenge: u64,
        own_commit: &Payload,
        own_resp: &Payload,
        nbr_commits: &[Payload],
        nbr_resps: &[Payload],
    ) -> bool {
        verify_impl(ctx, challenge, own_commit, own_resp, nbr_commits, nbr_resps).is_some()
    }
}

fn verify_impl(
    ctx: &NodeCtx,
    challenge: u64,
    own_commit: &Payload,
    own_resp: &Payload,
    nbr_commits: &[Payload],
    nbr_resps: &[Payload],
) -> Option<()> {
    if ctx.degree() == 0 {
        return Some(()); // single node: trivially planar
    }
    let own = Commit::decode(own_commit)?;
    let nbs: Vec<Commit> = nbr_commits
        .iter()
        .map(Commit::decode)
        .collect::<Option<_>>()?;
    let tree_nbs: Vec<TreeCert> = nbs.iter().map(|c| c.tree).collect();
    let info = check_tree(ctx, &own.tree, &tree_nbs)?;
    let n = own.tree.n;
    let spine = 2 * n - 1;
    // DFS recurrences (as in the PLS)
    if own.fmin < 1 || own.fmin > own.fmax || own.fmax > spine {
        return None;
    }
    if info.parent_port.is_none() && (own.fmin != 1 || own.fmax != spine) {
        return None;
    }
    let mut children = info.children_ports.clone();
    children.sort_by_key(|&p| nbs[p].fmin);
    if children.is_empty() {
        if own.fmax != own.fmin {
            return None;
        }
    } else {
        if nbs[children[0]].fmin != own.fmin + 1 {
            return None;
        }
        for w in children.windows(2) {
            if nbs[w[1]].fmin != nbs[w[0]].fmax + 2 {
                return None;
            }
        }
        if own.fmax != nbs[*children.last().unwrap()].fmax + 1 {
            return None;
        }
    }
    let mut copies: Vec<u64> = vec![own.fmin];
    for &p in &children {
        copies.push(nbs[p].fmax + 1);
    }
    // own opening must be for the queried edge
    let own_r = Response::decode(own_resp)?;
    let q = queried_port(challenge, ctx.id, ctx.degree());
    if own_r.other_id != ctx.neighbor_ids[q] {
        return None;
    }
    // collect openings relevant to this node: its own, plus any neighbor
    // opening whose edge touches this node
    let mut entries: Vec<(u64, Iv)> = Vec::new();
    let mut check_opening = |port: usize, resp: &Response, from_self: bool| -> Option<()> {
        let is_tree_edge = info.parent_port == Some(port) || info.children_ports.contains(&port);
        match &resp.opening {
            Opening::Tree(ivs) => {
                if !is_tree_edge {
                    return None;
                }
                let child_is_self = if from_self {
                    info.parent_port == Some(port)
                } else {
                    // the neighbor opened edge {nbr, me}: the child end is
                    // me iff nbr is my parent
                    info.parent_port == Some(port)
                };
                let (cmin, cmax) = if child_is_self {
                    (own.fmin, own.fmax)
                } else {
                    (nbs[port].fmin, nbs[port].fmax)
                };
                if cmin < 2 || cmax + 1 > spine {
                    return None;
                }
                let pos = [cmin - 1, cmin, cmax, cmax + 1];
                for (p, &iv) in pos.iter().zip(ivs.iter()) {
                    entries.push((*p, iv));
                }
            }
            Opening::Cotree { i, ii, j, ij } => {
                if is_tree_edge || i >= j {
                    return None;
                }
                let mine_i = copies.contains(i);
                let mine_j = copies.contains(j);
                if mine_i == mine_j {
                    return None;
                }
                let other = if mine_i { *j } else { *i };
                if other < nbs[port].fmin || other > nbs[port].fmax {
                    return None;
                }
                entries.push((*i, *ii));
                entries.push((*j, *ij));
            }
        }
        Some(())
    };
    check_opening(q, &own_r, true)?;
    for (p, nr) in nbr_resps.iter().enumerate() {
        let resp = Response::decode(nr)?;
        // the neighbor's queried edge is only checkable here if it is the
        // edge between us (its own degree is unknown here; rely on content)
        if resp.other_id == ctx.id {
            check_opening(p, &resp, false)?;
        }
    }
    // sanity + pairwise laminarity of everything seen
    let mut seen: std::collections::HashMap<u64, Iv> = std::collections::HashMap::new();
    for &(p, iv) in &entries {
        if p < 1 || p > spine || iv.1 > spine + 1 || !(iv.0 < p && p < iv.1) {
            return None;
        }
        match seen.insert(p, iv) {
            None => {}
            Some(prev) if prev == iv => {}
            Some(_) => return None,
        }
    }
    let ivs: Vec<Iv> = seen.values().copied().collect();
    for (x, a) in ivs.iter().enumerate() {
        for b in ivs.iter().skip(x + 1) {
            let nested_or_disjoint = b.1 <= a.0
                || a.1 <= b.0
                || (a.0 <= b.0 && b.1 <= a.1)
                || (b.0 <= a.0 && a.1 <= b.1);
            if !nested_or_disjoint {
                return None;
            }
        }
    }
    Some(())
}

/// Empirical soundness measurement: replay honest commitments/responses
/// computed on a planarized subgraph of the non-planar `g`, over
/// `trials` independent challenges. Returns the fraction of trials in
/// which at least one node rejected.
pub fn detection_rate(g: &Graph, trials: usize, seed: u64) -> f64 {
    let proto = DmamPlanarity::new();
    let sub = dpc_core::adversary::planarize(g);
    let Ok(commit) = proto.commit(&sub) else {
        return 1.0;
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut detected = 0usize;
    for _ in 0..trials {
        let challenge: u64 = rng.gen();
        // replay Merlin: answer with the honest sub-graph responses. A
        // node rejects when the edge the challenge selects *in g* is not
        // the edge Merlin opened (in particular whenever it selects one
        // of the removed edges), so detection depends on the coin — the
        // randomized-soundness trade-off this experiment measures.
        let resp = proto.respond(&sub, &commit, challenge);
        let out = run_forged(&proto, g, challenge, &commit, &resp);
        if out.reject_count() > 0 {
            detected += 1;
        }
    }
    detected as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;

    #[test]
    fn honest_runs_accept() {
        for (i, g) in [
            generators::grid(4, 5),
            generators::stacked_triangulation(40, 2),
            generators::random_tree(30, 3),
            generators::cycle(12),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..5u64 {
                let out = run_dmam(&DmamPlanarity::new(), g, seed * 31 + i as u64).unwrap();
                assert!(out.all_accept(), "instance {i} seed {seed}");
                assert_eq!(out.interactions, 3);
            }
        }
    }

    #[test]
    fn commit_smaller_than_pls_certificates() {
        use dpc_core::scheme::ProofLabelingScheme;
        let g = generators::stacked_triangulation(200, 7);
        let commit = DmamPlanarity::new().commit(&g).unwrap();
        let pls = dpc_core::schemes::planarity::PlanarityScheme::new()
            .prove(&g)
            .unwrap();
        assert!(
            commit.max_bits() * 2 < pls.max_bits(),
            "commit {} vs PLS {}",
            commit.max_bits(),
            pls.max_bits()
        );
    }

    #[test]
    fn nonplanar_rejected_by_prover() {
        assert!(DmamPlanarity::new()
            .commit(&generators::complete(5))
            .is_err());
    }

    #[test]
    fn detection_rate_positive_but_below_one() {
        let g = generators::planted_kuratowski(20, true, 1, 11);
        let rate = detection_rate(&g, 40, 5);
        assert!(rate > 0.0, "some challenge must catch the lie");
        // randomized soundness: unlike the PLS, single-shot detection can
        // genuinely miss (this is the trade-off E10 reports); accept any
        // positive rate
    }

    #[test]
    fn garbage_rejected() {
        let g = generators::grid(3, 3);
        let commit = Assignment::empty(9);
        let resp = Assignment::empty(9);
        let out = run_forged(&DmamPlanarity::new(), &g, 42, &commit, &resp);
        assert_eq!(out.reject_count(), 9);
    }

    #[test]
    fn forged_fmin_fmax_in_commit_rejected() {
        let g = generators::stacked_triangulation(25, 3);
        let proto = DmamPlanarity::new();
        let commit = proto.commit(&g).unwrap();
        let challenge = 12345u64;
        let resp = proto.respond(&g, &commit, challenge);
        // corrupt one node's committed DFS range
        let mut bad = commit.clone();
        let mut c = Commit::decode(&bad.certs[4]).unwrap();
        c.fmin += 1;
        bad.certs[4] = c.encode();
        let out = run_forged(&proto, &g, challenge, &bad, &resp);
        assert!(!out.all_accept(), "DFS recurrence must break");
    }

    #[test]
    fn response_for_wrong_edge_rejected() {
        let g = generators::grid(4, 4);
        let proto = DmamPlanarity::new();
        let commit = proto.commit(&g).unwrap();
        let challenge = 999u64;
        let mut resp = proto.respond(&g, &commit, challenge);
        // swap two nodes' responses: the opened edge no longer matches
        // the challenge-selected port at (at least) one of them
        resp.certs.swap(2, 9);
        let out = run_forged(&proto, &g, challenge, &commit, &resp);
        assert!(!out.all_accept());
    }

    #[test]
    fn crossing_intervals_in_openings_rejected() {
        // craft a response whose opened intervals pairwise cross
        let g = generators::stacked_triangulation(20, 5);
        let proto = DmamPlanarity::new();
        let commit = proto.commit(&g).unwrap();
        let challenge = 7u64;
        let honest = proto.respond(&g, &commit, challenge);
        let mut tampered = 0;
        let mut resp = honest.clone();
        for v in 0..g.node_count() {
            if let Some(mut r) = Response::decode(&resp.certs[v]) {
                if let Opening::Cotree { ii, .. } = &mut r.opening {
                    // shift one endpoint to force a crossing with the
                    // spine-structure intervals seen at the endpoint
                    ii.1 += 2;
                    resp.certs[v] = r.encode();
                    tampered += 1;
                }
            }
        }
        if tampered > 0 {
            let out = run_forged(&proto, &g, challenge, &commit, &resp);
            assert!(!out.all_accept(), "tampered openings must be caught");
        }
    }

    #[test]
    fn frame_roundtrip() {
        let mut a = BitWriter::new();
        a.write_bits(0b1011, 4);
        let mut b = BitWriter::new();
        b.write_varint(999);
        let f = frame(&Payload::from_writer(a), &Payload::from_writer(b));
        let (c, r) = unframe(&f).unwrap();
        assert_eq!(c.bit_len, 4);
        let mut rr = r.reader();
        assert_eq!(rr.read_varint().unwrap(), 999);
    }
}
