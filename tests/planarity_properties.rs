//! Property-based tests (proptest) on the planarity substrate and the
//! Theorem 1 scheme: every verdict is cross-certified by an independent
//! witness (Euler's formula for planar, Kuratowski extraction for
//! non-planar), so the left-right test is never trusted blindly.

use dpc::core::harness::run_pls;
use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::generators;
use dpc::planar::kuratowski::extract_kuratowski;
use dpc::planar::lr::{planarity, Planarity};
use dpc::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random planar graphs: LR says planar, the embedding passes Euler,
    /// and the PLS accepts everywhere.
    #[test]
    fn planar_pipeline_is_complete(n in 4u32..120, density in 0.0f64..1.0, seed in 0u64..1000) {
        let g = generators::random_planar(n, density, seed);
        match planarity(&g) {
            Planarity::Planar(rot) => {
                rot.validate_against(&g).unwrap();
                rot.euler_check().unwrap();
            }
            Planarity::NonPlanar => prop_assert!(false, "subgraph of a triangulation is planar"),
        }
        let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
        prop_assert!(out.all_accept());
        prop_assert_eq!(out.rounds, 1);
    }

    /// Random graphs: whatever the verdict, it is certified by an
    /// independent witness.
    #[test]
    fn every_verdict_is_certified(n in 5u32..28, extra in 0u32..40, seed in 0u64..1000) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = generators::gnm_connected(n, m, seed);
        match planarity(&g) {
            Planarity::Planar(rot) => {
                rot.euler_check().unwrap();
            }
            Planarity::NonPlanar => {
                let w = extract_kuratowski(&g).expect("non-planar must contain a witness");
                // the witness edges form a subgraph of g
                for &(u, v) in &w.edges {
                    prop_assert!(g.has_edge(u, v));
                }
            }
        }
    }

    /// Planarity is invariant under identifier reassignment, and so is
    /// the scheme's verdict.
    #[test]
    fn id_invariance(n in 4u32..80, seed in 0u64..500) {
        let g = generators::stacked_triangulation(n.max(3), seed);
        let h = generators::shuffle_ids(&g, seed ^ 0xdead);
        prop_assert_eq!(planarity(&g).is_planar(), planarity(&h).is_planar());
        let out = run_pls(&PlanarityScheme::new(), &h).unwrap();
        prop_assert!(out.all_accept());
    }

    /// Removing edges preserves planarity; the scheme keeps accepting on
    /// every connected edge-subgraph along a random deletion sequence.
    #[test]
    fn monotone_under_edge_deletion(n in 4u32..60, seed in 0u64..200) {
        let g = generators::stacked_triangulation(n.max(4), seed);
        let tree = dpc::graph::traversal::bfs_spanning_tree(&g, 0);
        let mask = tree.tree_edge_mask(&g);
        // delete every other cotree edge: still connected, still planar
        let mut flip = false;
        let sub = g.edge_subgraph(|e, _| {
            if mask[e as usize] {
                true
            } else {
                flip = !flip;
                flip
            }
        });
        prop_assert!(sub.is_connected());
        prop_assert!(planarity(&sub).is_planar());
        let out = run_pls(&PlanarityScheme::new(), &sub).unwrap();
        prop_assert!(out.all_accept());
    }

    /// The T-embedding invariants hold for every planar input: 2n−1
    /// spine positions, chords laminar, intervals tight.
    #[test]
    fn t_embedding_invariants(n in 3u32..100, seed in 0u64..500) {
        let g = generators::stacked_triangulation(n.max(3), seed);
        let (te, tree, _) = dpc::planar::tembed::t_embedding_auto(&g).unwrap();
        prop_assert_eq!(te.spine_len as usize, 2 * g.node_count() - 1);
        // occurrence counts match tree degrees
        for v in g.nodes() {
            let deg_t = tree.children[v as usize].len() + usize::from(v != tree.root);
            let expect = if v == tree.root { deg_t + 1 } else { deg_t };
            prop_assert_eq!(te.occurrences[v as usize].len(), expect);
        }
        // chords pairwise laminar
        for (i, c1) in te.chords.iter().enumerate() {
            for c2 in te.chords.iter().skip(i + 1) {
                let (a, b, c, d) = (c1.a, c1.b, c2.a, c2.b);
                prop_assert!(
                    b <= c || d <= a || (a <= c && d <= b) || (c <= a && b <= d),
                    "chords cross"
                );
            }
        }
    }

    /// Path-outerplanar generator output is always accepted by the
    /// Lemma 2 scheme.
    #[test]
    fn path_outerplanar_complete(n in 2u32..120, extra in 0u32..60, seed in 0u64..500) {
        let g = generators::random_path_outerplanar(n, extra, seed);
        let out = run_pls(&PathOuterplanarScheme::new(), &g).unwrap();
        prop_assert!(out.all_accept());
    }

    /// Degeneracy of planar graphs is at most 5 and the edge assignment
    /// never exceeds it.
    #[test]
    fn planar_degeneracy_bound(n in 3u32..150, density in 0.0f64..1.0, seed in 0u64..500) {
        let g = generators::random_planar(n.max(3), density, seed);
        let d = dpc::graph::degeneracy::degeneracy_order(&g);
        prop_assert!(d.degeneracy <= 5);
        let owner = dpc::graph::degeneracy::assign_edges_by_degeneracy(&g, &d);
        prop_assert!(dpc::graph::degeneracy::max_edges_per_node(&g, &owner) <= 5);
    }

    /// Certificate corruption at a random node never goes unnoticed:
    /// flip one bit of one certificate and at least one node's verdict
    /// must change... unless the flipped bit is redundant — so instead we
    /// assert the weaker, always-true direction: the *unmodified*
    /// assignment still accepts (determinism), and a truncated
    /// certificate always rejects at its owner.
    #[test]
    fn truncation_rejected(n in 4u32..60, seed in 0u64..200, victim in 0usize..60) {
        let g = generators::stacked_triangulation(n.max(4), seed);
        let scheme = PlanarityScheme::new();
        let honest = scheme.prove(&g).unwrap();
        let out = dpc::core::harness::run_with_assignment(&scheme, &g, &honest);
        prop_assert!(out.all_accept(), "determinism");
        let v = victim % g.node_count();
        let mut forged = honest.clone();
        let c = &mut forged.certs[v];
        if c.bit_len > 8 {
            c.bit_len -= 7;
            let out = dpc::core::harness::run_with_assignment(&scheme, &g, &forged);
            prop_assert!(!out.verdicts[v], "truncated certificate fails to parse at {v}");
        }
    }
}
