//! Property tests for the tiered certificate store: under any insert
//! sequence and a tiny hot budget, nothing certified is ever lost —
//! every graph stays retrievable (hot or cold), and a restart on the
//! same directory returns byte-identical wire suffixes.

use dpc_core::harness::certify_pls;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_graph::generators;
use dpc_runtime::put_uvarint;
use dpc_service::cache::{CacheConfig, CacheEntry, CertCache, ProveResult};
use dpc_service::store::{CertStore, StoreRecord};
use dpc_service::{SegmentConfig, SegmentStore, TieredCache};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let path = std::env::temp_dir().join(format!(
        "dpc-props-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// A certified entry for a seed-derived planar graph, keyed the way
/// the server keys it (scheme id 0 + canonical wire graph).
fn entry_for(n: u32, seed: u64) -> CacheEntry {
    let g = generators::stacked_triangulation(n, seed);
    let certified = certify_pls(&PlanarityScheme::new(), &g).unwrap();
    let mut keyed = Vec::new();
    put_uvarint(&mut keyed, 0);
    dpc_service::wire::encode_graph(&mut keyed, &g);
    CacheEntry::new(
        ProveResult::Certified {
            assignment: certified.assignment,
            outcome: certified.outcome,
        },
        keyed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any insert sequence (graph sizes and seeds drawn from the
    /// strategy, duplicates included) under a hot budget of roughly
    /// two entries, every certified graph remains retrievable with
    /// its exact suffix bytes, and reopening the store on the same
    /// directory serves the same bytes again.
    #[test]
    fn every_insert_survives_tiny_hot_budgets_and_restarts(
        seq_seed in 0u64..1_000_000,
        count in 4usize..12,
    ) {
        let dir = scratch_dir("surv");
        // seed-derived pseudo-random insert sequence with repeats
        let entries: Vec<CacheEntry> = (0..count)
            .map(|i| {
                let s = seq_seed.wrapping_mul(31).wrapping_add(i as u64);
                entry_for(16 + (s % 13) as u32, s % 7)
            })
            .collect();
        // roughly two entries' worth (cost ≈ payload + suffix + keyed
        // + bookkeeping; the exact constant does not matter — the
        // point is that most inserts evict)
        let hot_budget = (entries[0].suffix.len() + entries[0].keyed.len() + 512) * 2;
        {
            let cold = Arc::new(SegmentStore::open(SegmentConfig::new(&dir)).unwrap());
            let tiered = TieredCache::with_cold(
                CertCache::new(CacheConfig { shards: 1, byte_budget: hot_budget }),
                cold,
            );
            for e in &entries {
                let rec = e.record();
                tiered.insert(rec.key(), Arc::new(e.record().to_entry().unwrap()));
            }
            // retrievable from some tier, byte-identical
            for e in &entries {
                let rec = e.record();
                let got = tiered.lookup(rec.key(), &rec.keyed);
                prop_assert!(got.is_some(), "lost a certified graph");
                prop_assert_eq!(&got.unwrap().suffix, &e.suffix);
            }
            tiered.flush().unwrap();
        }
        // restart: new store over the same directory, fresh hot tier
        let cold = Arc::new(SegmentStore::open(SegmentConfig::new(&dir)).unwrap());
        let tiered = TieredCache::with_cold(
            CertCache::new(CacheConfig { shards: 1, byte_budget: hot_budget }),
            Arc::clone(&cold) as Arc<dyn CertStore>,
        );
        tiered.warm_load(hot_budget);
        for e in &entries {
            let rec = e.record();
            let got = tiered.lookup(rec.key(), &rec.keyed);
            prop_assert!(got.is_some(), "restart lost a certified graph");
            prop_assert_eq!(
                &got.unwrap().suffix, &e.suffix,
                "restart must serve byte-identical wire suffixes"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The segment store itself round-trips any record it accepted,
    /// across budget pressure: whatever `get` returns is always the
    /// exact bytes that were put (never a torn or foreign record).
    #[test]
    fn store_reads_are_exactly_what_was_written(
        seq_seed in 0u64..1_000_000,
        budget_entries in 2u64..6,
    ) {
        let dir = scratch_dir("exact");
        let records: Vec<StoreRecord> = (0..8u64)
            .map(|i| entry_for(15 + ((seq_seed + i) % 9) as u32, seq_seed % 5 + i).record())
            .collect();
        let per = records[0].keyed.len() as u64 + records[0].suffix.len() as u64 + 32;
        let store = SegmentStore::open(SegmentConfig {
            byte_budget: Some(per * budget_entries),
            ..SegmentConfig::new(&dir)
        })
        .unwrap();
        for r in &records {
            store.put(r).unwrap();
        }
        for r in &records {
            if let Some(got) = store.get(r.key(), &r.keyed) {
                prop_assert_eq!(&got, r, "a served record is the written record");
            }
        }
        // the budget kept only a suffix of the insert order: once a
        // record is dropped, no earlier record may still be present
        let present: Vec<bool> = records
            .iter()
            .map(|r| store.get(r.key(), &r.keyed).is_some())
            .collect();
        let first_kept = present.iter().position(|&p| p).unwrap_or(present.len());
        prop_assert!(
            present[first_kept..].iter().all(|&p| p),
            "drops are oldest-first: {:?}",
            present
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
