//! Compact simple-graph representation with stable node indices and
//! per-node network identifiers.
//!
//! Nodes are dense indices `0..n` ([`NodeId`]); every node additionally
//! carries a network identifier (`u64`), unique in the graph, matching the
//! paper's model where identifiers are drawn from a range polynomial in
//! `n` and hence fit in `O(log n)` bits. Edges are undirected, stored once
//! with a stable [`EdgeId`], plus symmetric adjacency lists.

use std::collections::HashMap;
use std::fmt;

/// Dense node index, `0..n`.
pub type NodeId = u32;
/// Dense undirected-edge index, `0..m`.
pub type EdgeId = u32;

/// An undirected edge `{u, v}` with `u != v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates an edge; endpoints are stored in the given order.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        Edge { u, v }
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "node {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Canonical form with the smaller endpoint first.
    pub fn canonical(&self) -> (NodeId, NodeId) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.u, self.v)
    }
}

/// Errors produced when constructing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A self-loop `{v, v}` was added; the model uses simple graphs.
    SelfLoop(NodeId),
    /// The same undirected edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// An endpoint is out of range.
    NodeOutOfRange(NodeId),
    /// Two nodes were assigned the same network identifier.
    DuplicateId(u64),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
            GraphError::DuplicateId(id) => write!(f, "duplicate network identifier {id}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The default network identifier of node `v`: `1000 + 7 * v` —
/// distinct, non-consecutive, polynomial in `n`. The single source of
/// truth for every layer that materializes or recognizes default ids
/// (builder defaults, unions, the service wire codec).
pub fn default_id(v: u64) -> u64 {
    1000 + 7 * v
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use dpc_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<Edge>,
    seen: HashMap<(NodeId, NodeId), ()>,
    ids: Option<Vec<u64>>,
}

impl GraphBuilder {
    /// Builder for a graph on `n` nodes with no edges yet.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashMap::new(),
            ids: None,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Adds a fresh node and returns its index.
    pub fn add_node(&mut self) -> NodeId {
        self.n += 1;
        self.n - 1
    }

    /// Adds the undirected edge `{u, v}`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange(u));
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange(v));
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if self.seen.insert(key, ()).is_some() {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.edges.push(Edge::new(u, v));
        Ok((self.edges.len() - 1) as EdgeId)
    }

    /// Adds `{u, v}` unless it already exists; reports whether it was added.
    pub fn add_edge_if_absent(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(_) => Ok(true),
            Err(GraphError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// True if `{u, v}` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.seen.contains_key(&key)
    }

    /// Sets explicit network identifiers (must be unique, one per node).
    pub fn with_ids(&mut self, ids: Vec<u64>) -> &mut Self {
        self.ids = Some(ids);
        self
    }

    /// Finalizes the graph. Default identifiers come from
    /// [`default_id`].
    pub fn build(self) -> Graph {
        let ids = self
            .ids
            .unwrap_or_else(|| (0..self.n as u64).map(default_id).collect());
        assert_eq!(ids.len(), self.n as usize, "one identifier per node");
        Graph::from_parts(self.n, self.edges, ids)
    }
}

/// A finite simple undirected graph with per-node network identifiers.
///
/// The representation is immutable after construction: adjacency lists are
/// built once (each entry carries the neighbor and the undirected edge id)
/// and sorted by neighbor index for deterministic iteration.
#[derive(Clone)]
pub struct Graph {
    n: u32,
    edges: Vec<Edge>,
    /// `adj[v]` = sorted list of `(neighbor, edge id)`.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    ids: Vec<u64>,
    id_to_node: HashMap<u64, NodeId>,
}

impl Graph {
    /// Builds a graph from parts. Prefer [`GraphBuilder`].
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, duplicate edges, or
    /// duplicate identifiers.
    pub fn from_parts(n: u32, edges: Vec<Edge>, ids: Vec<u64>) -> Self {
        assert_eq!(ids.len(), n as usize);
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n as usize];
        for (i, e) in edges.iter().enumerate() {
            assert!(e.u != e.v, "self-loop at {}", e.u);
            assert!(e.u < n && e.v < n, "endpoint out of range in {e}");
            adj[e.u as usize].push((e.v, i as EdgeId));
            adj[e.v as usize].push((e.u, i as EdgeId));
        }
        for l in &mut adj {
            l.sort_unstable();
            for w in l.windows(2) {
                assert_ne!(w[0].0, w[1].0, "duplicate edge to {}", w[0].0);
            }
        }
        let mut id_to_node = HashMap::with_capacity(n as usize);
        for (v, &id) in ids.iter().enumerate() {
            let prev = id_to_node.insert(id, v as NodeId);
            assert!(prev.is_none(), "duplicate identifier {id}");
        }
        Graph {
            n,
            edges,
            adj,
            ids,
            id_to_node,
        }
    }

    /// Convenience constructor from an edge list on `n` nodes.
    pub fn from_edges(n: u32, list: &[(NodeId, NodeId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in list {
            b.add_edge(u, v).expect("valid edge list");
        }
        b.build()
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n as usize
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over node indices `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n
    }

    /// The undirected edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    /// Sorted adjacency of `v`: `(neighbor, edge id)` pairs.
    pub fn adjacency(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v as usize]
    }

    /// Iterator over the neighbors of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v as usize].iter().map(|&(w, _)| w)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n as usize)
            .map(|v| self.adj[v].len())
            .max()
            .unwrap_or(0)
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// The id of edge `{u, v}` if present (binary search on adjacency).
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let l = &self.adj[u as usize];
        l.binary_search_by_key(&v, |&(w, _)| w).ok().map(|i| l[i].1)
    }

    /// Network identifier of `v`.
    pub fn id_of(&self, v: NodeId) -> u64 {
        self.ids[v as usize]
    }

    /// All identifiers, indexed by node.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Node with the given network identifier.
    pub fn node_of_id(&self, id: u64) -> Option<NodeId> {
        self.id_to_node.get(&id).copied()
    }

    /// True if every node carries its [`default_id`] — such graphs can
    /// be transmitted without an identifier list.
    pub fn has_default_ids(&self) -> bool {
        self.ids
            .iter()
            .copied()
            .eq((0..self.n as u64).map(default_id))
    }

    /// Returns a copy with fresh identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `ids` has the wrong length or duplicates.
    pub fn with_ids(&self, ids: Vec<u64>) -> Graph {
        Graph::from_parts(self.n, self.edges.clone(), ids)
    }

    /// True if the graph is connected (the model assumes connectivity).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        crate::traversal::bfs_order(self, 0).len() == self.n as usize
    }

    /// The connected components, each as a sorted list of node
    /// indices, ordered by smallest member. The output is fully
    /// determined by the graph, so every machine that splits the same
    /// graph agrees on the same partition — the property
    /// fleet-distributed proving relies on.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.n as usize];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for start in 0..self.n {
            if seen[start as usize] {
                continue;
            }
            seen[start as usize] = true;
            stack.push(start);
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &(w, _) in self.adjacency(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// The subgraph induced by `nodes` (sorted, duplicate-free),
    /// re-indexed densely in that order but keeping each node's
    /// original network identifier. Edges with an endpoint outside
    /// `nodes` are dropped. Verdict `i` of an outcome measured on the
    /// result belongs to original node `nodes[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is unsorted, has duplicates, or contains an
    /// out-of-range index.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Graph {
        assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "induced node list must be sorted and duplicate-free"
        );
        let local =
            |v: NodeId| -> Option<NodeId> { nodes.binary_search(&v).ok().map(|i| i as NodeId) };
        let mut edges = Vec::new();
        for (lu, &u) in nodes.iter().enumerate() {
            for &(w, _) in self.adjacency(u) {
                if u < w {
                    if let Some(lw) = local(w) {
                        edges.push(Edge::new(lu as NodeId, lw));
                    }
                }
            }
        }
        let ids = nodes.iter().map(|&v| self.ids[v as usize]).collect();
        Graph::from_parts(nodes.len() as u32, edges, ids)
    }

    /// Returns the subgraph induced by keeping exactly the edges for which
    /// `keep` returns true (same node set).
    pub fn edge_subgraph(&self, mut keep: impl FnMut(EdgeId, Edge) -> bool) -> Graph {
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .enumerate()
            .filter(|&(i, &e)| keep(i as EdgeId, e))
            .map(|(_, &e)| e)
            .collect();
        Graph::from_parts(self.n, edges, self.ids.clone())
    }

    /// Disjoint union; the nodes of `other` are shifted by `self.n` and
    /// identifiers are re-assigned to keep them unique.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let n = self.n + other.n;
        let mut edges = self.edges.clone();
        edges.extend(
            other
                .edges
                .iter()
                .map(|e| Edge::new(e.u + self.n, e.v + self.n)),
        );
        let ids = (0..n as u64).map(default_id).collect();
        Graph::from_parts(n, edges, ids)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.edges.len())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph on {} nodes, {} edges", self.n, self.edges.len())?;
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn builder_rejects_duplicate() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.add_edge(1, 0), Err(GraphError::DuplicateEdge(1, 0)));
        assert!(!b.add_edge_if_absent(0, 1).unwrap());
        assert!(b.add_edge_if_absent(1, 2).unwrap());
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(0, 5), Err(GraphError::NodeOutOfRange(5)));
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = Graph::from_edges(4, &[(2, 0), (0, 1), (3, 0)]);
        assert_eq!(
            g.neighbors(0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "sorted neighbors"
        );
        assert_eq!(g.degree(0), 3);
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
        let e = g.find_edge(0, 2).unwrap();
        assert_eq!(g.edge(e).canonical(), (0, 2));
    }

    #[test]
    fn identifiers_are_unique_and_resolvable() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let ids: Vec<u64> = (0..3).map(|v| g.id_of(v)).collect();
        assert_eq!(ids.len(), 3);
        for v in 0..3u32 {
            assert_eq!(g.node_of_id(g.id_of(v)), Some(v));
        }
        let g2 = g.with_ids(vec![10, 20, 30]);
        assert_eq!(g2.node_of_id(20), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate identifier")]
    fn duplicate_ids_panic() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let _ = g.with_ids(vec![5, 5, 6]);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(3, 7);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    fn connectivity() {
        let p = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(p.is_connected());
        let d = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!d.is_connected());
    }

    #[test]
    fn components_partition_and_induce() {
        let g = Graph::from_edges(7, &[(0, 2), (2, 4), (1, 3), (5, 6)]);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 2, 4], vec![1, 3], vec![5, 6]]);

        let sub = g.induced_subgraph(&comps[0]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.is_connected());
        // original identifiers survive the re-indexing
        assert_eq!(sub.id_of(0), g.id_of(0));
        assert_eq!(sub.id_of(1), g.id_of(2));
        assert_eq!(sub.id_of(2), g.id_of(4));

        // a connected graph is one component: itself
        let p = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(p.components(), vec![vec![0, 1, 2]]);
        // the empty graph has none
        assert!(Graph::from_edges(0, &[]).components().is_empty());
    }

    #[test]
    fn edge_subgraph_and_union() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let h = g.edge_subgraph(|_, e| e.canonical() != (0, 2));
        assert_eq!(h.edge_count(), 2);
        assert_eq!(h.node_count(), 3);
        let u = g.disjoint_union(&h);
        assert_eq!(u.node_count(), 6);
        assert_eq!(u.edge_count(), 5);
        assert!(!u.is_connected());
    }
}
