//! Storage-tier benches: what a certificate costs to serve from each
//! tier. `hot_hit` is the lock-striped LRU (an `Arc` clone + memcpy),
//! `cold_lookup` is the segment store (index probe + one positioned
//! read + CRC check + suffix decode), `miss_prove` is the full
//! Theorem 1 prover + verifier run a miss pays. The three together
//! are the tiering story in numbers: hot ≪ cold ≪ prove.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_core::harness::certify_pls;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_graph::generators;
use dpc_service::cache::{CacheConfig, CacheEntry, CertCache, ProveResult};
use dpc_service::store::CertStore;
use dpc_service::{SegmentConfig, SegmentStore, TieredCache};
use std::sync::Arc;

fn entry_for(n: u32, seed: u64) -> CacheEntry {
    let g = generators::stacked_triangulation(n, seed);
    let certified = certify_pls(&PlanarityScheme::new(), &g).expect("planar instance");
    let mut keyed = Vec::new();
    dpc_runtime::put_uvarint(&mut keyed, 0);
    dpc_service::wire::encode_graph(&mut keyed, &g);
    CacheEntry::new(
        ProveResult::Certified {
            assignment: certified.assignment,
            outcome: certified.outcome,
        },
        keyed,
    )
}

fn bench_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("dpc-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(SegmentStore::open(SegmentConfig::new(&dir)).expect("open store"));
    let entries: Vec<CacheEntry> = (0..64).map(|s| entry_for(80, s)).collect();
    for e in &entries {
        store.put(&e.record()).expect("append");
    }
    store.flush().expect("fsync");
    // hot tier holding every entry (hot_hit), and a cold-only probe
    // target (cold_lookup goes straight at the segment store)
    let tiered = TieredCache::with_cold(
        CertCache::new(CacheConfig::default()),
        Arc::clone(&store) as Arc<dyn CertStore>,
    );
    tiered.warm_load(usize::MAX);
    let probe = entries[17].record();
    let g = generators::stacked_triangulation(80, 99);

    let mut group = c.benchmark_group("store");
    group.bench_function(BenchmarkId::new("hot_hit", "tri80"), |b| {
        b.iter(|| {
            tiered
                .lookup(probe.key(), &probe.keyed)
                .expect("hot-resident")
        });
    });
    group.bench_function(BenchmarkId::new("cold_lookup", "tri80"), |b| {
        b.iter(|| store.get(probe.key(), &probe.keyed).expect("stored"));
    });
    group.bench_function(BenchmarkId::new("miss_prove", "tri80"), |b| {
        b.iter(|| certify_pls(&PlanarityScheme::new(), &g).expect("planar"));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
