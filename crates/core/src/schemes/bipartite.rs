//! Bipartiteness PLS — the classic O(1)-bit example.
//!
//! The certificate is a single bit: the node's side of a 2-coloring.
//! Verification checks every neighbor carries the other bit. This is
//! the textbook contrast with planarity: some classes need just one
//! certificate bit, planarity provably needs `Θ(log n)` (Theorem 2).

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use dpc_graph::{Graph, NodeId};
use dpc_runtime::bits::BitWriter;
use dpc_runtime::{NodeCtx, Payload};

/// PLS for the class of bipartite graphs; certificates are 1 bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct BipartiteScheme;

impl BipartiteScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        BipartiteScheme
    }
}

impl ProofLabelingScheme for BipartiteScheme {
    fn name(&self) -> &'static str {
        "bipartite"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        // BFS 2-coloring; an odd cycle surfaces as a same-color edge
        let n = g.node_count();
        let mut color = vec![u8::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        color[0] = 0;
        queue.push_back(0 as NodeId);
        while let Some(v) = queue.pop_front() {
            for w in g.neighbors(v) {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    queue.push_back(w);
                } else if color[w as usize] == color[v as usize] {
                    return Err(ProveError::NotInClass("bipartite graphs"));
                }
            }
        }
        let certs = (0..n)
            .map(|v| {
                let mut w = BitWriter::new();
                w.write_bool(color[v] == 1);
                Payload::from_writer(w)
            })
            .collect();
        Ok(Assignment { certs })
    }

    fn verify(&self, _ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        let read = |p: &Payload| -> Option<bool> {
            let mut r = p.reader();
            let b = r.read_bool().ok()?;
            (r.remaining() == 0).then_some(b)
        };
        let Some(mine) = read(own) else { return false };
        neighbors.iter().all(|p| read(p) == Some(!mine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_bipartite_families() {
        for g in [
            generators::path(30),
            generators::cycle(30), // even cycle
            generators::grid(5, 7),
            generators::complete_bipartite(4, 6),
            generators::random_tree(50, 1),
            generators::hypercube(4),
        ] {
            let out = run_pls(&BipartiteScheme, &g).unwrap();
            assert!(out.all_accept());
            assert_eq!(out.max_cert_bits, 1, "one bit suffices");
            assert_eq!(out.rounds, 1);
        }
    }

    #[test]
    fn declines_odd_cycles_and_cliques() {
        assert!(BipartiteScheme.prove(&generators::cycle(7)).is_err());
        assert!(BipartiteScheme.prove(&generators::complete(4)).is_err());
        assert!(BipartiteScheme.prove(&generators::wheel(8)).is_err());
    }

    #[test]
    fn soundness_on_odd_cycle_all_assignments() {
        // with 1-bit certificates we can check soundness EXHAUSTIVELY:
        // every assignment to C5 leaves a rejecting node
        let g = generators::cycle(5);
        for mask in 0u32..32 {
            let certs = (0..5)
                .map(|v| {
                    let mut w = BitWriter::new();
                    w.write_bool(mask >> v & 1 == 1);
                    Payload::from_writer(w)
                })
                .collect();
            let out = run_with_assignment(&BipartiteScheme, &g, &Assignment { certs });
            assert!(
                !out.all_accept(),
                "assignment {mask:05b} fooled every node of C5"
            );
        }
    }

    #[test]
    fn flipped_color_caught() {
        let g = generators::grid(4, 4);
        let mut a = BipartiteScheme.prove(&g).unwrap();
        let mut w = BitWriter::new();
        let mut r = a.certs[5].reader();
        w.write_bool(!r.read_bool().unwrap());
        a.certs[5] = Payload::from_writer(w);
        let out = run_with_assignment(&BipartiteScheme, &g, &a);
        assert!(!out.all_accept());
    }
}
