//! Lemma 5's instances: paths and cycles of blocks.
//!
//! A *block* `B_r` is a clique `K_{k−1}` on nodes with consecutive
//! identifiers `r(k−1) … (r+1)(k−1)−1`. A *block connection* from `B_i`
//! to `B_j` joins the `⌈(k−1)/2⌉` rightmost nodes of `B_i` with the
//! `⌊(k−1)/2⌋` leftmost nodes of `B_j` completely. A *path of blocks*
//! chains the starting block `B_0`, the `p` ordinary blocks in the order
//! of a permutation `π`, and the ending block `B_{p+1}`; a *cycle of
//! blocks* closes a sub-chain into a ring.
//!
//! Paths of blocks are `K_k`-minor-free (Claim 7) — certified here by
//! the bandwidth argument: along the chain order, no edge stretches more
//! than `k−2` positions. Cycles of blocks contain `K_k` as a minor
//! (Claim 8) — witnessed by contracting everything outside one block.

use dpc_graph::minors::{clique_pairs, excludes_clique_minor_by_stretch, verify_minor_witness};
use dpc_graph::{Graph, GraphBuilder, NodeId};

/// Number of nodes per block for parameter `k`.
pub fn block_size(k: usize) -> usize {
    k - 1
}

/// Right-part size `⌈(k−1)/2⌉`.
pub fn right_part(k: usize) -> usize {
    k / 2
}

/// Left-part size `⌊(k−1)/2⌋`.
pub fn left_part(k: usize) -> usize {
    (k - 1) / 2
}

/// A path or cycle of blocks, remembering the chain order.
#[derive(Debug, Clone)]
pub struct BlockInstance {
    /// The graph. Node indices equal node identifiers' rank; identifiers
    /// are the paper's `r(k−1)+i` values.
    pub graph: Graph,
    /// Parameter `k` (forbidden clique size).
    pub k: usize,
    /// Block indices (`r` values) in chain order.
    pub chain: Vec<usize>,
    /// Whether the chain is closed into a cycle.
    pub is_cycle: bool,
}

impl BlockInstance {
    /// Nodes of block `r`, as node indices of `self.graph`.
    pub fn block_nodes(&self, chain_pos: usize) -> Vec<NodeId> {
        let s = block_size(self.k);
        let base = (chain_pos * s) as u32;
        (base..base + s as u32).collect()
    }

    /// The layout certifying `K_k`-minor-freeness for paths: position
    /// along the chain.
    pub fn chain_layout(&self) -> Vec<u32> {
        (0..self.graph.node_count() as u32).collect()
    }
}

fn build_chain(k: usize, blocks: &[usize], close: bool) -> BlockInstance {
    assert!(k >= 3, "k >= 3");
    let s = block_size(k);
    let n = (blocks.len() * s) as u32;
    let mut b = GraphBuilder::new(n);
    // intra-block cliques; node index = chain position, identifier from
    // the block index r
    let mut ids = Vec::with_capacity(n as usize);
    for (pos, &r) in blocks.iter().enumerate() {
        let base = (pos * s) as u32;
        for i in 0..s as u32 {
            ids.push((r * s) as u64 + i as u64);
            for j in (i + 1)..s as u32 {
                b.add_edge(base + i, base + j).unwrap();
            }
        }
    }
    // connections along the chain
    let connect = |b: &mut GraphBuilder, from_pos: usize, to_pos: usize| {
        let fb = (from_pos * s) as u32;
        let tb = (to_pos * s) as u32;
        for i in 0..right_part(k) as u32 {
            for j in 0..left_part(k) as u32 {
                b.add_edge(fb + s as u32 - 1 - i, tb + j).unwrap();
            }
        }
    };
    for w in 0..blocks.len() - 1 {
        connect(&mut b, w, w + 1);
    }
    if close {
        connect(&mut b, blocks.len() - 1, 0);
    }
    b.with_ids(ids);
    BlockInstance {
        graph: b.build(),
        k,
        chain: blocks.to_vec(),
        is_cycle: close,
    }
}

/// The path of blocks for permutation `perm` of `{1..p}`:
/// `B_0 → B_{π⁻¹(1)} → … → B_{π⁻¹(p)} → B_{p+1}`.
///
/// `perm[t]` is `π(t+1)`, i.e. a permutation of `1..=p` in 1-based
/// terms; pass `(1..=p).collect()` for the identity.
pub fn path_of_blocks(k: usize, perm: &[usize]) -> BlockInstance {
    let p = perm.len();
    // chain order: B_0, then blocks by increasing π-value, then B_{p+1}
    let mut inv = vec![0usize; p + 1];
    for (idx, &v) in perm.iter().enumerate() {
        assert!((1..=p).contains(&v), "perm must be a permutation of 1..=p");
        inv[v] = idx + 1; // block index (1-based ordinary block)
    }
    let mut chain = vec![0usize];
    chain.extend_from_slice(&inv[1..=p]);
    chain.push(p + 1);
    build_chain(k, &chain, false)
}

/// A cycle of blocks over the given ordinary-block indices, connected in
/// the order given and closed into a ring.
pub fn cycle_of_blocks(k: usize, blocks: &[usize]) -> BlockInstance {
    assert!(blocks.len() >= 2, "cycle needs at least two blocks");
    build_chain(k, blocks, true)
}

/// Certifies that a path of blocks is `K_k`-minor-free via the stretch
/// (bandwidth) certificate: along the chain order every edge spans at
/// most `k − 2` positions, so treewidth ≤ k−2.
pub fn certify_path_kfree(inst: &BlockInstance) -> bool {
    !inst.is_cycle && excludes_clique_minor_by_stretch(&inst.graph, inst.k, &inst.chain_layout())
}

/// Produces and verifies Claim 8's explicit `K_k`-minor witness in a
/// cycle of blocks: the k−1 singleton parts of one block plus the
/// contracted remainder.
pub fn certify_cycle_has_kk(inst: &BlockInstance) -> bool {
    if !inst.is_cycle {
        return false;
    }
    let s = block_size(inst.k);
    let n = inst.graph.node_count();
    let block0: Vec<NodeId> = (0..s as u32).collect();
    let rest: Vec<NodeId> = (s as u32..n as u32).collect();
    let mut parts: Vec<Vec<NodeId>> = block0.into_iter().map(|v| vec![v]).collect();
    parts.push(rest);
    verify_minor_witness(&inst.graph, &parts, &clique_pairs(inst.k))
}

/// The radius-`t` variant (the paper's remark): replaces every edge by a
/// path of length `t`, pushing any `t`-round verifier back to the
/// 1-round situation. Legality is preserved: subdividing cannot create a
/// `K_k` minor (k ≥ 4), and contracting the subdivision back shows
/// illegal instances stay illegal.
pub fn subdivide_for_radius(inst: &BlockInstance, t: u32) -> Graph {
    assert!(t >= 1);
    dpc_graph::generators::subdivision_of(&inst.graph, t - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::minors::{contains_clique_minor_small, has_k4_minor, SearchResult};

    fn identity(p: usize) -> Vec<usize> {
        (1..=p).collect()
    }

    #[test]
    fn sizes_match_paper() {
        for k in [3usize, 4, 5, 6] {
            let p = 4;
            let inst = path_of_blocks(k, &identity(p));
            assert_eq!(inst.graph.node_count(), (k - 1) * (p + 2));
            assert!(inst.graph.is_connected());
        }
    }

    #[test]
    fn connection_edge_counts() {
        // between consecutive blocks: ⌈(k-1)/2⌉ * ⌊(k-1)/2⌋ edges
        for k in [4usize, 5, 6] {
            let inst = path_of_blocks(k, &identity(2));
            let s = block_size(k);
            let blocks = 4; // B0, B1, B2, B3
            let intra = blocks * s * (s - 1) / 2;
            let inter = (blocks - 1) * right_part(k) * left_part(k);
            assert_eq!(inst.graph.edge_count(), intra + inter, "k={k}");
        }
    }

    #[test]
    fn paths_certified_kfree_for_many_k_and_perms() {
        for k in [4usize, 5, 6, 7] {
            for p in [2usize, 5, 20] {
                let inst = path_of_blocks(k, &identity(p));
                assert!(certify_path_kfree(&inst), "k={k} p={p}");
            }
        }
        // non-identity permutations are isomorphic re-labelings: the
        // chain layout still certifies
        let inst = path_of_blocks(5, &[3, 1, 4, 2, 5]);
        assert!(certify_path_kfree(&inst));
    }

    #[test]
    fn k4_paths_exactly_k4_free() {
        let inst = path_of_blocks(4, &identity(6));
        assert!(
            !has_k4_minor(&inst.graph),
            "exact check agrees with certificate"
        );
    }

    #[test]
    fn cycles_contain_kk_via_witness() {
        for k in [4usize, 5, 6] {
            let inst = cycle_of_blocks(k, &[1, 2, 3, 4]);
            assert!(certify_cycle_has_kk(&inst), "k={k}");
        }
    }

    #[test]
    fn k4_cycles_exactly_have_k4() {
        let inst = cycle_of_blocks(4, &[1, 2, 3]);
        assert!(has_k4_minor(&inst.graph));
    }

    #[test]
    fn small_cycle_branching_search_agrees() {
        let inst = cycle_of_blocks(5, &[1, 2]);
        assert_eq!(
            contains_clique_minor_small(&inst.graph, 5, 50_000_000),
            SearchResult::Found
        );
    }

    #[test]
    fn identifiers_follow_block_numbering() {
        let inst = path_of_blocks(4, &identity(3));
        // chain: B0, B1, B2, B3, B4 (identity): ids consecutive
        let ids: Vec<u64> = inst.graph.ids().to_vec();
        assert_eq!(ids, (0..15u64).collect::<Vec<_>>());
        // a permuted path re-orders ids but keeps the set
        let inst2 = path_of_blocks(4, &[2, 1, 3]);
        let mut ids2: Vec<u64> = inst2.graph.ids().to_vec();
        assert_ne!(ids2, ids);
        ids2.sort_unstable();
        assert_eq!(ids2, ids);
    }

    #[test]
    fn subdivision_preserves_legality() {
        let path = path_of_blocks(4, &identity(3));
        let sub = subdivide_for_radius(&path, 3);
        assert!(!has_k4_minor(&sub), "subdividing keeps K4-minor-freeness");
        let cyc = cycle_of_blocks(4, &[1, 2, 3]);
        let sub = subdivide_for_radius(&cyc, 2);
        assert!(has_k4_minor(&sub), "subdividing keeps the K4 minor");
    }

    #[test]
    fn paths_of_blocks_k4_are_planar() {
        // for k=4,5 the legal instances happen to be planar, connecting
        // Lemma 5 to planarity certification
        let inst = path_of_blocks(4, &identity(8));
        assert!(dpc_planar::lr::is_planar(&inst.graph));
    }
}
