//! Client-routed clustering: rendezvous hashing across `dpc serve`
//! nodes, with failover.
//!
//! Certificates are content-addressed (`uvarint(scheme id)` + the
//! canonical [`dpc_graph::canon::graph_hash`]), and the client
//! computes that key deterministically *before* opening any
//! connection — so request routing needs no coordinator and no
//! gossip. A [`ClusterClient`] holds N server addresses, ranks them
//! per key by rendezvous (highest-random-weight) hashing, sends each
//! request to the top-ranked node, and fails over down the ranking
//! when a node cannot be reached. Servers stay share-nothing on the
//! request path: each node's cache and store simply fill with the
//! keys the ring assigns it.
//!
//! With a replication factor above one
//! ([`ClusterClient::with_replication`]) each certificate lives on
//! the top-k nodes of its ranking instead of just the owner: fresh
//! proves are StorePush-copied to the other replicas, reads walk the
//! top-k with cheap cached-only probes and **read-repair** any
//! higher-ranked replica that missed, and the servers' own
//! anti-entropy sweep (`dpc serve --peers`) converges whatever the
//! client could not reach — so killing any single node loses no
//! cached certificate and forces no re-prove.
//!
//! Rendezvous hashing (rather than a ring of virtual tokens) keeps
//! the stability property the store layer wants: when a node leaves,
//! only *its* keys remap (each surviving node keeps its rank-1 set),
//! so a drained node's segment files can be
//! [`crate::store::SegmentStore::merge_from`]-d into any survivor and
//! every certificate stays exactly one `get` away.
//!
//! The failure model is connection-level: connect errors and broken
//! *or unparseable* streams fail over to the next-ranked node — once
//! a frame cannot be decoded the stream offset is untrustworthy, so a
//! version-skewed peer is handled like a dead one, and retrying is
//! always safe because requests are idempotent (the same key proves
//! the same certificate anywhere). An error *response* from a
//! reachable server is a real answer and is returned, not retried.
//! Per-request failover is tracked in [`ClusterStats`], the
//! client-side mirror of the servers' Stats.

use crate::client::{
    AuditOptions, CertifyOptions, CheckOptions, Client, GenOptions, InteractiveOptions,
    SoundnessOptions,
};
use crate::metrics::{SlowLogEntry, StatsSnapshot};
use crate::registry::SchemeId;
use crate::store::{RecordKind, StoreRecord};
use crate::wire::{self, Response, WireError};
use dpc_core::batch::BatchSummary;
use dpc_core::harness::Outcome;
use dpc_graph::canon;
use dpc_graph::Graph;
use dpc_runtime::put_uvarint;
use std::io;
use std::time::{Duration, Instant};

/// Domain separator between the routing key and the node address in
/// a rendezvous score (neither side can fake a boundary shift).
const SCORE_SEP: u8 = 0xa5;

/// An ordered set of node addresses with deterministic per-key
/// ranking. The pure routing core of [`ClusterClient`] — tests and
/// tools can rank keys without opening a single connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    addrs: Vec<String>,
}

impl Ring {
    /// A ring over the given node addresses. Order does not affect
    /// routing (scores are per-address), but duplicates would make
    /// one node own every rank of its keys — silently disabling
    /// failover — so they are rejected, as is an empty set. The
    /// duplicate check is *literal*: list each server by exactly one
    /// canonical address, because aliases of the same machine
    /// (`localhost:4700` vs `127.0.0.1:4700`, hostname vs IP) cannot
    /// be detected and would quietly shrink the effective ring.
    pub fn new<I, S>(addrs: I) -> Result<Ring, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let addrs: Vec<String> = addrs
            .into_iter()
            .map(Into::into)
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if addrs.is_empty() {
            return Err("a cluster needs at least one node address".to_string());
        }
        let mut seen = addrs.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(format!(
                "duplicate node address {:?} (each node may appear once)",
                seen.windows(2).find(|w| w[0] == w[1]).expect("dup")[0]
            ));
        }
        Ok(Ring { addrs })
    }

    /// The node addresses, in construction order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True for a ring with no nodes (unconstructible via [`Ring::new`]).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The rendezvous score of `key` on `addr`: FNV-1a-128 over
    /// `key ‖ 0xa5 ‖ addr`. Deterministic across processes, so every
    /// client ranks identically.
    pub fn score(key: &[u8], addr: &str) -> u128 {
        let mut buf = Vec::with_capacity(key.len() + addr.len() + 1);
        buf.extend_from_slice(key);
        buf.push(SCORE_SEP);
        buf.extend_from_slice(addr.as_bytes());
        canon::hash_bytes(&buf).0
    }

    /// Node indices ranked for `key`, best first: the failover order.
    /// Ties (never observed with distinct addresses, but the order
    /// must be total) break toward the lexicographically smaller
    /// address.
    pub fn rank(&self, key: &[u8]) -> Vec<usize> {
        let mut scored: Vec<(u128, usize)> = self
            .addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| (Self::score(key, addr), i))
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| self.addrs[a.1].cmp(&self.addrs[b.1]))
        });
        scored.into_iter().map(|(_, i)| i).collect()
    }

    /// The owning (rank-1) node index for `key`.
    pub fn owner(&self, key: &[u8]) -> usize {
        self.rank(key)[0]
    }
}

/// The routing key of a graph-carrying request: `uvarint(scheme id)`
/// followed by the 128-bit canonical graph hash (structure *and*
/// identifiers — the same content the servers key their caches by),
/// little-endian.
pub fn graph_key(scheme: SchemeId, g: &Graph) -> Vec<u8> {
    let mut key = Vec::with_capacity(19);
    put_uvarint(&mut key, scheme.0 as u64);
    key.extend_from_slice(&canon::graph_hash(g).0.to_le_bytes());
    key
}

/// The routing key of a Gen request, which carries no graph: the
/// scheme id plus the generation parameters. Any node can generate,
/// but a stable key keeps repeat generations on one node's pipeline.
pub fn gen_key(scheme: SchemeId, family: &str, n: u32, seed: u64) -> Vec<u8> {
    let mut key = Vec::with_capacity(family.len() + 16);
    put_uvarint(&mut key, scheme.0 as u64);
    key.extend_from_slice(family.as_bytes());
    key.push(0);
    put_uvarint(&mut key, n as u64);
    put_uvarint(&mut key, seed);
    key
}

/// Deterministically picks `per_node` planar triangulations of `n`
/// nodes owned by each node of `ring`, by scanning seeds and
/// bucketing each graph under its rendezvous owner. Which keys a
/// node owns depends on its address (often an OS-assigned port), so
/// callers that must *cover* the ring — the spread/failover tests,
/// and `dpc bench-serve --nodes`, whose summary claims every node
/// served traffic — select their graphs through the pure ring
/// instead of hoping a blind sample lands everywhere. The seed range
/// starts at 10 000, far from the small seeds tests hand-pick for
/// fixed workloads, so a selected graph never duplicates one
/// (which would turn an expected fresh prove into a cache hit).
///
/// # Panics
///
/// If the seed budget (2000 seeds per node, at least 4000) cannot
/// cover the ring — which would take an astronomically skewed hash,
/// at any ring size, since the budget scales with the node count.
pub fn graphs_by_owner(ring: &Ring, per_node: usize, n: u32) -> Vec<Vec<Graph>> {
    let mut buckets: Vec<Vec<Graph>> = vec![Vec::new(); ring.len()];
    let budget = 4000u64.max(2000 * (ring.len() as u64 + per_node as u64));
    for seed in 10_000..10_000 + budget {
        if buckets.iter().all(|b| b.len() >= per_node) {
            break;
        }
        let g = dpc_graph::generators::stacked_triangulation(n, seed);
        let owner = ring.owner(&graph_key(SchemeId::PLANARITY, &g));
        if buckets[owner].len() < per_node {
            buckets[owner].push(g);
        }
    }
    assert!(
        buckets.iter().all(|b| b.len() >= per_node),
        "{budget} seeds cover every node of a {}-node ring",
        ring.len()
    );
    buckets
}

/// Client-side counters of one node, inside [`ClusterStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Node address (as configured).
    pub addr: String,
    /// Requests this node answered.
    pub routed: u64,
    /// Connection-level failures observed against this node (each one
    /// excluded it for the remainder of that request).
    pub failures: u64,
}

/// Client-side view of a cluster's traffic: where requests were
/// routed and how often the ranking had to fail over. This is *not*
/// server state — every process driving the ring keeps its own.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Requests that got an answer from some node.
    pub requests: u64,
    /// Fail-over hops: attempts that hit an unreachable node before
    /// a lower-ranked node answered.
    pub failovers: u64,
    /// Requests that exhausted every node without an answer.
    pub exhausted: u64,
    /// Certificates copied synchronously to the other top-k replicas
    /// after a fresh prove (replication factor > 1 only).
    pub replica_writes: u64,
    /// Cached hits served by a lower-ranked replica that triggered an
    /// asynchronous backfill of the replicas ranked above it.
    pub read_repairs: u64,
    /// Replica copies that failed (target unreachable or errored);
    /// the servers' anti-entropy sweep repairs these later.
    pub replica_errors: u64,
    /// Per-node counters, indexed like the ring's addresses.
    pub per_node: Vec<NodeStats>,
}

impl ClusterStats {
    fn new(addrs: &[String]) -> ClusterStats {
        ClusterStats {
            per_node: addrs
                .iter()
                .map(|a| NodeStats {
                    addr: a.clone(),
                    ..NodeStats::default()
                })
                .collect(),
            ..ClusterStats::default()
        }
    }

    /// Number of nodes that answered at least one request.
    pub fn nodes_used(&self) -> usize {
        self.per_node.iter().filter(|n| n.routed > 0).count()
    }
}

/// The result of one [`ClusterClient::certify_distributed`] sweep.
#[derive(Debug)]
pub struct DistributedReport {
    /// Per-graph answers, in input order: the measured outcome of a
    /// certified graph, or the decline reason / error text otherwise.
    pub results: Vec<Result<Outcome, String>>,
    /// [`BatchSummary::fold`] over the outcomes, in input order — the
    /// same integer fold a single node applies, so this summary is
    /// byte-identical to the sequential one over the same graphs.
    pub summary: BatchSummary,
    /// Nodes that answered at least one certify in this sweep.
    pub nodes_used: usize,
    /// Graphs certified by the fleet (outcome obtained).
    pub delegated: u64,
    /// Graphs whose every ranked node failed at the connection level.
    pub delegate_errors: u64,
    /// Wall time of the client-side summary fold.
    pub merge_wall: Duration,
}

/// Maps a summary-certify response into its fold input: the outcome
/// of a certified graph, the decline reason or error text otherwise.
fn summary_result(resp: Response) -> Result<Outcome, String> {
    match resp {
        Response::CertifiedSummary { outcome, .. } => Ok(outcome),
        Response::Declined { reason, .. } => Err(reason),
        Response::Error(e) => Err(e),
        other => Err(format!("unexpected response to Certify: {other:?}")),
    }
}

/// A client for a cluster of `dpc serve` nodes: rendezvous-routes
/// each request by its content key and fails over on connection
/// errors. Connections are opened lazily per node and reused; a
/// failed connection is dropped and re-dialed on the node's next
/// turn.
///
/// The wire protocol is exactly the single-node one — a server cannot
/// tell a `ClusterClient` from a [`Client`].
pub struct ClusterClient {
    ring: Ring,
    conns: Vec<Option<Client>>,
    /// Nodes that have been dialed at least once; the connect-wait
    /// retry window only applies before this flips (boot races), so
    /// a dead node costs the window once per client, not per request.
    dialed: Vec<bool>,
    connect_wait: Option<Duration>,
    /// Copies of each certificate to keep, on the top-k ranked nodes.
    /// 1 (the default) is the original single-owner routing.
    replication: usize,
    stats: ClusterStats,
}

impl ClusterClient {
    /// A client over the given node addresses (at least one, no
    /// duplicates). No connection is opened yet.
    pub fn new<I, S>(addrs: I) -> Result<ClusterClient, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Ok(Self::over(Ring::new(addrs)?))
    }

    /// A client over an existing ring.
    pub fn over(ring: Ring) -> ClusterClient {
        let stats = ClusterStats::new(ring.addrs());
        let conns = ring.addrs().iter().map(|_| None).collect();
        let dialed = ring.addrs().iter().map(|_| false).collect();
        ClusterClient {
            ring,
            conns,
            dialed,
            connect_wait: None,
            replication: 1,
            stats,
        }
    }

    /// Keeps each certificate on the top-`k` nodes of its rendezvous
    /// ranking (clamped to `1..=ring.len()`). With `k == 1` routing
    /// is byte-identical to the unreplicated client. With `k > 1`,
    /// non-bypass certifies probe the top-k replicas with cached-only
    /// requests (a probe never triggers a prove), read-repair any
    /// higher-ranked replica that missed, and copy fresh proves to
    /// every replica — so any single node can die without losing a
    /// cached certificate.
    pub fn with_replication(mut self, k: usize) -> ClusterClient {
        self.replication = k.clamp(1, self.ring.len());
        self
    }

    /// The configured replication factor (see
    /// [`ClusterClient::with_replication`]).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Retries each node's *first* dial (in this client's lifetime)
    /// for up to `wait` — covering the boot race where servers are
    /// still binding. Every later dial of a node is a single attempt:
    /// once a node has been tried, its death costs one refused
    /// connect per request, never a timeout.
    pub fn with_connect_wait(mut self, wait: Duration) -> ClusterClient {
        self.connect_wait = Some(wait);
        self
    }

    /// The configured connect-wait, if any (see
    /// [`ClusterClient::with_connect_wait`]).
    pub fn connect_wait(&self) -> Option<Duration> {
        self.connect_wait
    }

    /// The routing ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The client-side traffic counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Routes one pre-encoded request body by `key`: tries the ranked
    /// nodes in order, excluding each node that fails at the
    /// connection level for the remainder of this request.
    pub fn route(&mut self, key: &[u8], body: &[u8]) -> Result<Response, WireError> {
        let ranked = self.ring.rank(key);
        let mut last_err: Option<WireError> = None;
        for (hop, &idx) in ranked.iter().enumerate() {
            match self.try_node(idx, body) {
                Ok(resp) => {
                    if hop > 0 {
                        self.stats.failovers += hop as u64;
                    }
                    self.stats.requests += 1;
                    self.stats.per_node[idx].routed += 1;
                    return Ok(resp);
                }
                Err(e) => {
                    self.stats.per_node[idx].failures += 1;
                    last_err = Some(e);
                }
            }
        }
        self.stats.exhausted += 1;
        Err(last_err.expect("ring is nonempty"))
    }

    /// The cached connection to a node, dialing if needed. Only the
    /// node's first-ever dial honors the connect-wait window.
    fn ensure_conn(&mut self, idx: usize) -> Result<&mut Client, WireError> {
        if self.conns[idx].is_none() {
            let addr = self.ring.addrs()[idx].as_str();
            let first_dial = !std::mem::replace(&mut self.dialed[idx], true);
            let client = match (self.connect_wait, first_dial) {
                (Some(wait), true) => Client::connect_with_retry(addr, wait),
                _ => Client::connect(addr),
            }
            .map_err(WireError::Io)?;
            self.conns[idx] = Some(client);
        }
        Ok(self.conns[idx].as_mut().expect("just connected"))
    }

    /// One attempt against one node; any error drops its cached
    /// connection.
    fn try_node(&mut self, idx: usize, body: &[u8]) -> Result<Response, WireError> {
        let client = self.ensure_conn(idx)?;
        match client.send_body(body).and_then(|()| client.recv()) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // a broken stream poisons the pipeline ordering:
                // always re-dial this node next time
                self.conns[idx] = None;
                Err(e)
            }
        }
    }

    /// Certifies a graph on the owning node (or, with a replication
    /// factor above one, across the top-k replicas — bypass requests
    /// always take the plain single-owner path, since their whole
    /// point is a fresh prove). Takes the same [`CertifyOptions`] the
    /// direct [`Client`] takes, so call sites swap between the two
    /// without rephrasing; the one option that cannot be routed is
    /// `chunked` (a multi-frame upload has no single body to fail
    /// over), which errors rather than silently degrading.
    pub fn certify(
        &mut self,
        graph: &Graph,
        opts: impl Into<CertifyOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        if opts.chunked.is_some() {
            return Err(WireError::Protocol(
                "chunked upload is connection-oriented and cannot fail over; \
                 open a direct Client to the owning node"
                    .to_string(),
            ));
        }
        let key = graph_key(opts.scheme, graph);
        if opts.cached_only {
            return self.route(
                &key,
                &wire::encode_certify_probe_request(graph, opts.scheme),
            );
        }
        if opts.summary {
            return self.route(
                &key,
                &wire::encode_certify_summary_request(graph, opts.bypass, opts.scheme),
            );
        }
        if self.replication > 1 && !opts.bypass {
            return self.certify_replicated(graph, opts.scheme);
        }
        self.route(
            &key,
            &wire::encode_certify_request(graph, opts.bypass, opts.scheme),
        )
    }

    /// Certifies a graph under a scheme on the owning node.
    #[deprecated(note = "use certify(graph, CertifyOptions::new().scheme(..))")]
    pub fn certify_scheme(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        let opts = CertifyOptions::from(bypass_cache).scheme(scheme);
        self.certify(graph, opts)
    }

    /// The k>1 certify path: walk the top-k replicas with cached-only
    /// probes; a hit anywhere answers immediately (read-repairing the
    /// higher-ranked replicas that missed); an all-miss falls back to
    /// one full certify routed down the whole ranking, whose result
    /// is then copied to the other replicas.
    fn certify_replicated(
        &mut self,
        graph: &Graph,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        let key = graph_key(scheme, graph);
        let ranked = self.ring.rank(&key);
        let replicas: Vec<usize> = ranked[..self.replication.min(ranked.len())].to_vec();
        let probe = wire::encode_certify_probe_request(graph, scheme);
        let mut hops = 0u64;
        let mut missed: Vec<usize> = Vec::new();
        for &idx in &replicas {
            match self.try_node(idx, &probe) {
                Ok(Response::Error(e)) if e == wire::NOT_CACHED => missed.push(idx),
                Ok(resp) => {
                    self.stats.requests += 1;
                    self.stats.failovers += hops;
                    self.stats.per_node[idx].routed += 1;
                    if !missed.is_empty() {
                        if let Some(record) = response_record(scheme, graph, &resp) {
                            // backfill the better-ranked replicas off
                            // the request path: the caller already
                            // has its answer
                            self.stats.read_repairs += 1;
                            let targets: Vec<String> = missed
                                .iter()
                                .map(|&i| self.ring.addrs()[i].clone())
                                .collect();
                            read_repair(targets, record);
                        }
                    }
                    return Ok(resp);
                }
                Err(_) => {
                    hops += 1;
                    self.stats.per_node[idx].failures += 1;
                }
            }
        }
        // no replica holds it (or none was reachable): one real
        // certify, failing over down the full ranking as usual
        let resp = self.route(&key, &wire::encode_certify_request(graph, false, scheme))?;
        if let Some(record) = response_record(scheme, graph, &resp) {
            // the answering node cached and stored the result itself;
            // the other replicas get an explicit copy (a push to a
            // node that already holds the key is a cheap duplicate)
            for &idx in &replicas[1..] {
                match self.push_record(idx, &record) {
                    Ok(()) => self.stats.replica_writes += 1,
                    Err(_) => self.stats.replica_errors += 1,
                }
            }
        }
        Ok(resp)
    }

    /// Pushes one record to one node over the cached connection; any
    /// error drops the connection, like every other per-node call.
    fn push_record(&mut self, idx: usize, record: &StoreRecord) -> Result<(), WireError> {
        let client = self.ensure_conn(idx)?;
        match client.store_push(std::slice::from_ref(record)) {
            Ok(_) => Ok(()),
            Err(e) => {
                self.conns[idx] = None;
                Err(e)
            }
        }
    }

    /// Certifies a batch of graphs across the whole fleet: each graph
    /// is summary-certified on its rendezvous owner, with all of one
    /// node's graphs pipelined on its connection (send the window,
    /// then read answers — bandwidth plus one round trip, not one
    /// round trip per graph). A node that dies mid-pipeline fails its
    /// unanswered graphs over down the ranking one by one, like any
    /// routed request.
    ///
    /// Results come back in input order and are folded with
    /// [`BatchSummary::fold`] — the same integer fold a single node
    /// applies to the same graphs in the same order, so the
    /// distributed summary is byte-identical to the sequential one.
    pub fn certify_distributed(
        &mut self,
        graphs: &[Graph],
        bypass_cache: bool,
        scheme: SchemeId,
    ) -> DistributedReport {
        let keys: Vec<Vec<u8>> = graphs.iter().map(|g| graph_key(scheme, g)).collect();
        let bodies: Vec<Vec<u8>> = graphs
            .iter()
            .map(|g| wire::encode_certify_summary_request(g, bypass_cache, scheme))
            .collect();
        let mut buckets: Vec<Vec<usize>> = (0..self.ring.len()).map(|_| Vec::new()).collect();
        for (i, key) in keys.iter().enumerate() {
            buckets[self.ring.owner(key)].push(i);
        }
        let mut results: Vec<Option<Result<Outcome, String>>> =
            (0..graphs.len()).map(|_| None).collect();
        // nodes_used is per sweep, not per client lifetime: diff the
        // per-node routed counters around the sweep
        let routed_before: Vec<u64> = self.stats.per_node.iter().map(|n| n.routed).collect();
        let mut delegate_errors = 0u64;
        for (node, idxs) in buckets.into_iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let unanswered = self.pipeline_summaries(node, &idxs, &bodies, &mut results);
            // the owner died mid-pipeline: its leftovers take the
            // ordinary ranked route, one round trip each
            for i in unanswered {
                match self.route(&keys[i], &bodies[i]) {
                    Ok(resp) => results[i] = Some(summary_result(resp)),
                    Err(e) => {
                        delegate_errors += 1;
                        results[i] = Some(Err(e.to_string()));
                    }
                }
            }
        }
        let nodes_used = self
            .stats
            .per_node
            .iter()
            .zip(routed_before)
            .filter(|(n, before)| n.routed > *before)
            .count();
        let results: Vec<Result<Outcome, String>> = results
            .into_iter()
            .map(|r| r.expect("every graph answered"))
            .collect();
        let merge_start = Instant::now();
        let summary = BatchSummary::fold(results.iter().map(|r| r.as_ref().ok()));
        let merge_wall = merge_start.elapsed();
        DistributedReport {
            delegated: results.iter().filter(|r| r.is_ok()).count() as u64,
            delegate_errors,
            nodes_used,
            results,
            summary,
            merge_wall,
        }
    }

    /// Pipelines pre-encoded summary-certify bodies (`idxs` into
    /// `bodies`) on one node's connection, filling `results` as
    /// answers land. Returns the indices left unanswered when the
    /// connection failed (empty on a clean run); the caller routes
    /// those individually. Window-bounded like the server's own
    /// peer delegation.
    fn pipeline_summaries(
        &mut self,
        node: usize,
        idxs: &[usize],
        bodies: &[Vec<u8>],
        results: &mut [Option<Result<Outcome, String>>],
    ) -> Vec<usize> {
        const WINDOW: usize = 64;
        if self.ensure_conn(node).is_err() {
            self.stats.per_node[node].failures += 1;
            return idxs.to_vec();
        }
        // take the connection out of its slot for the duration: the
        // stats fields stay borrowable while the pipeline runs
        let mut client = self.conns[node].take().expect("just connected");
        let mut queue: std::collections::VecDeque<usize> = idxs.iter().copied().collect();
        let mut pending: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut unanswered: Vec<usize> = Vec::new();
        let mut answered = 0u64;
        let mut dead = false;
        loop {
            while !dead && pending.len() < WINDOW {
                let Some(i) = queue.pop_front() else { break };
                match client.send_body(&bodies[i]) {
                    Ok(()) => pending.push_back(i),
                    Err(_) => {
                        dead = true;
                        unanswered.push(i);
                    }
                }
            }
            let Some(i) = pending.pop_front() else { break };
            if dead {
                unanswered.push(i);
                continue;
            }
            match client.recv() {
                Ok(resp) => {
                    answered += 1;
                    results[i] = Some(summary_result(resp));
                }
                Err(_) => {
                    dead = true;
                    unanswered.push(i);
                }
            }
        }
        unanswered.extend(queue);
        self.stats.requests += answered;
        self.stats.per_node[node].routed += answered;
        if dead {
            // a broken stream poisons the pipeline ordering: re-dial
            self.stats.per_node[node].failures += 1;
        } else {
            self.conns[node] = Some(client);
        }
        unanswered
    }

    /// Membership check on the owning node.
    pub fn check(
        &mut self,
        graph: &Graph,
        opts: impl Into<CheckOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        let key = graph_key(opts.scheme, graph);
        self.route(&key, &wire::encode_check_request(graph, opts.scheme))
    }

    /// Membership check under a scheme on the owning node.
    #[deprecated(note = "use check(graph, CheckOptions::new().scheme(..))")]
    pub fn check_scheme(&mut self, graph: &Graph, scheme: SchemeId) -> Result<Response, WireError> {
        self.check(graph, scheme)
    }

    /// Server-side generation, routed by the generation parameters.
    pub fn gen(
        &mut self,
        family: &str,
        n: u32,
        seed: u64,
        opts: impl Into<GenOptions>,
    ) -> Result<Graph, WireError> {
        let opts = opts.into();
        let key = gen_key(opts.scheme, family, n, seed);
        match self.route(
            &key,
            &wire::encode_gen_request(family, n, seed, opts.scheme),
        )? {
            Response::Generated(g) => Ok(g),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to Gen: {other:?}"
            ))),
        }
    }

    /// Server-side generation with a scheme id.
    #[deprecated(note = "use gen(family, n, seed, GenOptions::new().scheme(..))")]
    pub fn gen_scheme(
        &mut self,
        family: &str,
        n: u32,
        seed: u64,
        scheme: SchemeId,
    ) -> Result<Graph, WireError> {
        self.gen(family, n, seed, scheme)
    }

    /// Soundness probe on the owning node.
    pub fn soundness(
        &mut self,
        graph: &Graph,
        opts: impl Into<SoundnessOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        let key = graph_key(opts.scheme, graph);
        self.route(
            &key,
            &wire::encode_soundness_request(graph, opts.seed, opts.scheme),
        )
    }

    /// Soundness probe under a scheme on the owning node.
    #[deprecated(note = "use soundness(graph, SoundnessOptions::new().seed(..).scheme(..))")]
    pub fn soundness_scheme(
        &mut self,
        graph: &Graph,
        seed: u64,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        self.soundness(graph, SoundnessOptions::new().seed(seed).scheme(scheme))
    }

    /// Runs one interactive-certification session against the graph's
    /// owning node, failing over down the ranking like any routed
    /// request. A session is two ordered frames on one connection, so
    /// failover restarts the *whole* session on the next node — safe,
    /// because a session is as idempotent as a certify (same graph,
    /// same seed, same transcript on every correct node).
    pub fn interactive(
        &mut self,
        graph: &Graph,
        opts: impl Into<InteractiveOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        let key = graph_key(opts.scheme, graph);
        let ranked = self.ring.rank(&key);
        let mut last_err: Option<WireError> = None;
        for (hop, &idx) in ranked.iter().enumerate() {
            let attempt = self
                .ensure_conn(idx)
                .and_then(|client| client.interactive(graph, opts));
            match attempt {
                Ok(resp) => {
                    if hop > 0 {
                        self.stats.failovers += hop as u64;
                    }
                    self.stats.requests += 1;
                    self.stats.per_node[idx].routed += 1;
                    return Ok(resp);
                }
                Err(e @ WireError::Io(_)) => {
                    // connection-level: drop the conn, try the next node
                    self.conns[idx] = None;
                    self.stats.per_node[idx].failures += 1;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        self.stats.exhausted += 1;
        Err(last_err.expect("ring is nonempty"))
    }

    /// Broadcasts one on-demand audit pass to every node (`Err` for
    /// unreachable ones). Like [`ClusterClient::node_stats`], a
    /// broadcast: no routing key, no [`ClusterStats`] accounting.
    /// Every node gets the same sampling seed, so a fleet-wide report
    /// is reproducible end to end.
    pub fn node_audits(
        &mut self,
        opts: impl Into<AuditOptions>,
    ) -> Vec<(String, Result<Response, WireError>)> {
        let opts = opts.into();
        let addrs: Vec<String> = self.ring.addrs().to_vec();
        addrs
            .into_iter()
            .enumerate()
            .map(|(idx, addr)| {
                let result = self.audit_of(idx, opts);
                (addr, result)
            })
            .collect()
    }

    fn audit_of(&mut self, idx: usize, opts: AuditOptions) -> Result<Response, WireError> {
        let client = self.ensure_conn(idx)?;
        match client.audit(opts) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conns[idx] = None;
                Err(e)
            }
        }
    }

    /// Every node's Stats snapshot (`Err` for unreachable nodes).
    /// Stats carries no routing key: it is a broadcast, not a routed
    /// request, and does not touch [`ClusterStats`].
    pub fn node_stats(&mut self) -> Vec<(String, Result<StatsSnapshot, WireError>)> {
        let addrs: Vec<String> = self.ring.addrs().to_vec();
        addrs
            .into_iter()
            .enumerate()
            .map(|(idx, addr)| {
                let result = self.stats_of(idx);
                (addr, result)
            })
            .collect()
    }

    fn stats_of(&mut self, idx: usize) -> Result<StatsSnapshot, WireError> {
        let client = self.ensure_conn(idx)?;
        match client.stats() {
            Ok(s) => Ok(s),
            Err(e) => {
                self.conns[idx] = None;
                Err(e)
            }
        }
    }

    /// Every node's slow-request log (`Err` for unreachable nodes).
    /// Like [`ClusterClient::node_stats`], a broadcast: no routing
    /// key, no [`ClusterStats`] accounting.
    pub fn node_slowlog(&mut self) -> Vec<(String, Result<Vec<SlowLogEntry>, WireError>)> {
        let addrs: Vec<String> = self.ring.addrs().to_vec();
        addrs
            .into_iter()
            .enumerate()
            .map(|(idx, addr)| {
                let result = self.slowlog_of(idx);
                (addr, result)
            })
            .collect()
    }

    fn slowlog_of(&mut self, idx: usize) -> Result<Vec<SlowLogEntry>, WireError> {
        let client = self.ensure_conn(idx)?;
        match client.slowlog() {
            Ok(entries) => Ok(entries),
            Err(e) => {
                self.conns[idx] = None;
                Err(e)
            }
        }
    }

    /// The fleet view: every reachable node's Stats v3 snapshot
    /// folded into one (counters summed, histograms added bucket-wise,
    /// per-scheme rows merged by id), plus the per-node details.
    /// Errors only when *no* node is reachable.
    #[allow(clippy::type_complexity)]
    pub fn fleet_stats(
        &mut self,
    ) -> Result<
        (
            StatsSnapshot,
            Vec<(String, Result<StatsSnapshot, WireError>)>,
        ),
        WireError,
    > {
        let per_node = self.node_stats();
        let mut fleet: Option<StatsSnapshot> = None;
        for (_, result) in &per_node {
            if let Ok(s) = result {
                match &mut fleet {
                    Some(f) => f.absorb(s),
                    None => fleet = Some(s.clone()),
                }
            }
        }
        match fleet {
            Some(f) => Ok((f, per_node)),
            None => Err(WireError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "no cluster node is reachable",
            ))),
        }
    }
}

/// Reconstructs the store record a server retains for a certify
/// response — the unit replica writes, read-repair, and anti-entropy
/// all push. The keyed bytes are rebuilt from the scheme id and the
/// canonical graph encoding (exactly what the server keys its cache
/// by), so the record is byte-identical to the one the answering node
/// wrote. `None` for responses that are never cached (errors).
pub fn response_record(scheme: SchemeId, graph: &Graph, resp: &Response) -> Option<StoreRecord> {
    let (kind, suffix) = match resp {
        Response::Certified {
            outcome,
            assignment,
            ..
        } => (
            RecordKind::Certified,
            wire::encode_certified_suffix(outcome, assignment),
        ),
        Response::Declined { reason, .. } => {
            (RecordKind::Declined, wire::encode_declined_suffix(reason))
        }
        _ => return None,
    };
    let mut keyed = Vec::new();
    put_uvarint(&mut keyed, scheme.0 as u64);
    wire::encode_graph(&mut keyed, graph);
    Some(StoreRecord {
        kind,
        keyed,
        suffix,
    })
}

/// Fire-and-forget backfill of replicas that missed a read: a
/// detached thread with its own connections, so the repair never
/// blocks the request path (and a dead target costs the caller
/// nothing — anti-entropy converges it later).
fn read_repair(targets: Vec<String>, record: StoreRecord) {
    let _ = std::thread::Builder::new()
        .name("dpc-read-repair".into())
        .spawn(move || {
            for addr in targets {
                if let Ok(mut client) = Client::connect(addr.as_str()) {
                    let _ = client.store_push(std::slice::from_ref(&record));
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeConfig};
    use dpc_graph::generators;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:4700")).collect()
    }

    #[test]
    fn ring_rejects_empty_and_duplicate_node_sets() {
        assert!(Ring::new(Vec::<String>::new()).is_err());
        assert!(Ring::new(["a:1", "b:1", "a:1"]).is_err());
        assert!(Ring::new([" ", ""]).is_err(), "blank addresses are empty");
        let ring = Ring::new(["a:1", "b:1"]).unwrap();
        assert_eq!(ring.len(), 2);
        assert!(!ring.is_empty());
    }

    #[test]
    fn ranking_is_deterministic_and_total() {
        let ring = Ring::new(addrs(5)).unwrap();
        let g = generators::grid(6, 6);
        let key = graph_key(SchemeId::PLANARITY, &g);
        let first = ring.rank(&key);
        assert_eq!(first, ring.rank(&key), "same key, same ranking");
        assert_eq!(first.len(), 5);
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a ranking is a permutation");
        assert_eq!(ring.owner(&key), first[0]);
    }

    #[test]
    fn node_order_does_not_affect_routing() {
        let fwd = Ring::new(addrs(4)).unwrap();
        let mut rev_addrs = addrs(4);
        rev_addrs.reverse();
        let rev = Ring::new(rev_addrs).unwrap();
        for seed in 0..20u64 {
            let g = generators::stacked_triangulation(16, seed);
            let key = graph_key(SchemeId::PLANARITY, &g);
            assert_eq!(
                fwd.addrs()[fwd.owner(&key)],
                rev.addrs()[rev.owner(&key)],
                "owner is an address property, not a position property"
            );
        }
    }

    #[test]
    fn scheme_id_is_part_of_the_routing_key() {
        let g = generators::grid(5, 5);
        let a = graph_key(SchemeId::PLANARITY, &g);
        let b = graph_key(SchemeId::BIPARTITE, &g);
        assert_ne!(a, b, "same graph, different schemes, different keys");
        let ring = Ring::new(addrs(8)).unwrap();
        // not necessarily different owners, but the ranking machinery
        // must at least see different keys; over 8 nodes and many
        // schemes some pair diverges
        let diverges = (0u16..9).any(|s| {
            ring.owner(&graph_key(SchemeId(s), &g)) != ring.owner(&graph_key(SchemeId(0), &g))
        });
        assert!(diverges, "scheme id never moved a key across 8 nodes");
    }

    #[test]
    fn cluster_client_fails_over_to_a_live_node() {
        let handle = serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        // one dead node (port 1 refuses), one live node — requests
        // whose rank-1 is dead must land on the live one
        let dead = "127.0.0.1:1".to_string();
        let live = handle.addr().to_string();
        let ring = Ring::new([dead.clone(), live.clone()]).unwrap();
        let buckets = graphs_by_owner(&ring, 3, 16);
        let dead_idx = ring.addrs().iter().position(|a| *a == dead).unwrap();
        let mut cc = ClusterClient::over(ring.clone());
        for g in buckets.iter().flatten() {
            let resp = cc.certify(g, false).unwrap();
            assert!(matches!(resp, Response::Certified { .. }), "{resp:?}");
        }
        let stats = cc.stats().clone();
        assert_eq!(stats.requests, 6);
        assert_eq!(
            stats.failovers, 3,
            "exactly the dead-owned requests hopped: {stats:?}"
        );
        assert_eq!(stats.exhausted, 0);
        let dead_row = &stats.per_node[dead_idx];
        let live_row = &stats.per_node[1 - dead_idx];
        assert_eq!(dead_row.routed, 0);
        assert_eq!(dead_row.failures, 3);
        assert_eq!(live_row.routed, 6);
        assert_eq!(stats.nodes_used(), 1);
        // stats broadcast skips the dead node but reaches the live one
        let (fleet, per_node) = cc.fleet_stats().unwrap();
        assert_eq!(fleet.certify, 6);
        assert_eq!(per_node.len(), 2);
        assert!(per_node.iter().any(|(_, r)| r.is_err()));
        handle.shutdown();
    }

    #[test]
    fn connect_wait_applies_only_to_a_nodes_first_dial() {
        let handle = serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        let dead = "127.0.0.1:1".to_string();
        let live = handle.addr().to_string();
        let ring = Ring::new([dead, live]).unwrap();
        let buckets = graphs_by_owner(&ring, 4, 16);
        let wait = Duration::from_millis(300);
        let mut cc = ClusterClient::over(ring).with_connect_wait(wait);
        assert_eq!(cc.connect_wait(), Some(wait));
        let start = std::time::Instant::now();
        for g in buckets.iter().flatten() {
            cc.certify(g, false).unwrap();
        }
        let elapsed = start.elapsed();
        // 8 requests, 4 of them ranked on the dead node: only the
        // FIRST dead dial may burn the retry window; re-dials are
        // single refused connects (the old per-request behavior
        // would stall >= 4 * wait here)
        assert!(
            elapsed < wait * 2,
            "dead node stalls once per client, not per request: {elapsed:?}"
        );
        assert_eq!(cc.stats().requests, 8);
        assert_eq!(cc.stats().failovers, 4);
        handle.shutdown();
    }

    #[test]
    fn exhausting_every_node_reports_the_error() {
        let mut cc = ClusterClient::new(["127.0.0.1:1"]).unwrap();
        let g = generators::grid(3, 3);
        assert!(cc.certify(&g, false).is_err());
        assert_eq!(cc.stats().exhausted, 1);
        assert_eq!(cc.stats().requests, 0);
        assert!(cc.fleet_stats().is_err(), "no node reachable");
    }
}
