//! End-to-end cluster test: three unmodified `dpc serve` nodes behind
//! a [`ClusterClient`] — rendezvous routing spreads mixed-scheme
//! traffic, a killed node fails over without losing a single request,
//! and the dead node's segment store merges into a survivor with
//! byte-identical certificate suffixes and deduplicated records.

use dpc_graph::generators;
use dpc_service::cluster::{graphs_by_owner, ClusterClient, Ring};
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::store::{CertStore, StoreRecord};
use dpc_service::wire::Response;
use dpc_service::{serve, CertifyOptions, SegmentConfig, SegmentStore, ServeConfig, ServerHandle};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dpc-cluster-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn ring_of(n: usize, base: &std::path::Path) -> Vec<ServerHandle> {
    (0..n)
        .map(|i| {
            let cfg = ServeConfig {
                store: Some(SegmentConfig::new(base.join(format!("node-{i}")))),
                ..ServeConfig::default()
            };
            serve("127.0.0.1:0", cfg).unwrap()
        })
        .collect()
}

/// Mixed-scheme workload: planar triangulations under planarity,
/// grids under bipartite, and one spanning-tree certify.
fn workload() -> Vec<(dpc_graph::Graph, SchemeId)> {
    let mut work = Vec::new();
    for seed in 0..8u64 {
        work.push((
            generators::stacked_triangulation(18 + seed as u32, seed),
            SchemeId::PLANARITY,
        ));
    }
    for side in 3..7u32 {
        work.push((generators::grid(side, side), SchemeId::BIPARTITE));
    }
    work.push((generators::grid(5, 4), SchemeId::SPANNING_TREE));
    work
}

#[test]
fn three_node_ring_survives_a_kill_and_merges_the_dead_store() {
    let base = scratch_dir("ring");
    let mut handles = ring_of(3, &base);
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    let ring = Ring::new(addrs.clone()).unwrap();
    let mut cc = ClusterClient::over(ring.clone());

    // ---- phase 1: mixed-scheme traffic over the full ring ----
    // the fixed workload plus one ring-selected graph per node, so
    // every node deterministically owns at least one key
    let mut work = workload();
    for bucket in graphs_by_owner(&ring, 1, 20) {
        for g in bucket {
            work.push((g, SchemeId::PLANARITY));
        }
    }
    for (g, scheme) in &work {
        let resp = cc
            .certify(g, CertifyOptions::new().scheme(*scheme))
            .unwrap();
        assert!(
            matches!(resp, Response::Certified { cached: false, .. }),
            "fresh key must prove: {resp:?}"
        );
        // the repeat is a cache hit on the same owning node
        let again = cc
            .certify(g, CertifyOptions::new().scheme(*scheme))
            .unwrap();
        assert!(
            matches!(again, Response::Certified { cached: true, .. }),
            "{again:?}"
        );
    }
    let routing = cc.stats().clone();
    assert_eq!(routing.requests, 2 * work.len() as u64);
    assert_eq!(routing.failovers, 0, "all nodes are up: {routing:?}");
    assert_eq!(
        routing.nodes_used(),
        3,
        "every node serves its selected key: {routing:?}"
    );
    // per-node server stats agree that traffic spread
    let (fleet, per_node) = cc.fleet_stats().unwrap();
    assert_eq!(fleet.certify, 2 * work.len() as u64);
    assert!(per_node.iter().all(|(_, r)| r.is_ok()));

    // ---- phase 2: kill the busiest node; every request still answers ----
    let victim = routing
        .per_node
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| n.routed)
        .map(|(i, _)| i)
        .unwrap();
    let victim_addr = addrs[victim].clone();
    let victim_dir = base.join(format!("node-{victim}"));
    handles.remove(victim).shutdown();

    let mut cc = ClusterClient::new(addrs.clone()).unwrap();
    for (g, scheme) in &work {
        let resp = cc
            .certify(g, CertifyOptions::new().scheme(*scheme))
            .unwrap();
        assert!(
            matches!(resp, Response::Certified { .. }),
            "failover must answer: {resp:?}"
        );
    }
    let routing = cc.stats().clone();
    assert_eq!(routing.requests, work.len() as u64, "no request was lost");
    assert_eq!(routing.exhausted, 0);
    assert!(routing.failovers > 0, "the victim owned keys: {routing:?}");
    let victim_row = routing
        .per_node
        .iter()
        .find(|n| n.addr == victim_addr)
        .unwrap();
    assert_eq!(victim_row.routed, 0, "a dead node answers nothing");
    assert!(victim_row.failures > 0);

    // ---- phase 3: merge the dead node's store into a survivor ----
    for h in handles {
        h.shutdown(); // stores must be offline for dpc-store tools
    }
    let survivor_idx = (0..3).find(|&i| i != victim).unwrap();
    let survivor_dir = base.join(format!("node-{survivor_idx}"));
    let victim_store = SegmentStore::open(SegmentConfig::new(&victim_dir)).unwrap();
    let victim_records: Vec<StoreRecord> = victim_store.iter().map(|r| r.unwrap()).collect();
    assert!(
        !victim_records.is_empty(),
        "the busiest node persisted its certificates"
    );
    let survivor = SegmentStore::open(SegmentConfig::new(&survivor_dir)).unwrap();
    let before = survivor.len();
    let report = survivor.merge_from(&victim_store).unwrap();
    assert_eq!(report.scanned, victim_records.len() as u64);
    assert_eq!(report.source_errors, 0);
    assert_eq!(
        report.merged + report.duplicates,
        report.scanned,
        "every record lands exactly once: {report:?}"
    );
    assert_eq!(
        survivor.len(),
        before + report.merged,
        "dedup by content key: {report:?}"
    );
    // the rehomed certificates are byte-identical to what the victim
    // served: same keyed bytes, same pre-encoded wire suffix
    for record in &victim_records {
        let merged = survivor
            .get(record.key(), &record.keyed)
            .expect("merged record is retrievable");
        assert_eq!(merged.suffix, record.suffix, "byte-identical suffix");
        assert_eq!(merged, *record);
    }
    // the union verifies clean against the standard registry
    survivor.flush().unwrap();
    let verify = survivor.verify(&SchemeRegistry::standard());
    assert!(verify.problems.is_empty(), "{:?}", verify.problems);
    assert_eq!(verify.records, survivor.len());
    // merging the same source twice is a pure no-op
    let again = survivor.merge_from(&victim_store).unwrap();
    assert_eq!(again.merged, 0);
    assert_eq!(again.duplicates, report.scanned);
    assert_eq!(survivor.len(), before + report.merged);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn restarted_survivor_serves_the_merged_certificates_without_reproving() {
    // the payoff of merge: after rehoming, a single node answers the
    // whole ring's keys from its store — zero prover executions
    let base = scratch_dir("rehome");
    let handles = ring_of(2, &base);
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    let ring = Ring::new(addrs).unwrap();
    let mut cc = ClusterClient::over(ring.clone());
    // three ring-selected graphs per node: both stores fill, certainly
    let graphs: Vec<_> = graphs_by_owner(&ring, 3, 20)
        .into_iter()
        .flatten()
        .collect();
    for g in &graphs {
        assert!(matches!(
            cc.certify(g, false).unwrap(),
            Response::Certified { cached: false, .. }
        ));
    }
    assert_eq!(
        cc.stats().nodes_used(),
        2,
        "both nodes took traffic: {:?}",
        cc.stats()
    );
    for h in handles {
        h.shutdown();
    }
    // merge node-1 into node-0, then restart only node-0
    let src = SegmentStore::open(SegmentConfig::new(base.join("node-1"))).unwrap();
    let dst = SegmentStore::open(SegmentConfig::new(base.join("node-0"))).unwrap();
    dst.merge_from(&src).unwrap();
    dst.flush().unwrap();
    assert_eq!(dst.len(), graphs.len() as u64);
    drop((src, dst));
    let cfg = ServeConfig {
        store: Some(SegmentConfig::new(base.join("node-0"))),
        ..ServeConfig::default()
    };
    let survivor = serve("127.0.0.1:0", cfg).unwrap();
    let mut cc = ClusterClient::new([survivor.addr().to_string()]).unwrap();
    for g in &graphs {
        // every key — including those the dead node proved — is a hit
        assert!(matches!(
            cc.certify(g, false).unwrap(),
            Response::Certified { cached: true, .. }
        ));
    }
    assert_eq!(survivor.stats().proves, 0, "nothing was re-proved");
    survivor.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners, so peer lists can name every address up front.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Two or more disjoint stacked triangulations glued into one graph
/// by shifting each component past the previous one.
fn disjoint_union(sizes: &[u32], seed: u64) -> dpc_graph::Graph {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut base = 0u32;
    for (i, &n) in sizes.iter().enumerate() {
        let part = generators::stacked_triangulation(n, seed + i as u64);
        edges.extend(part.edges().iter().map(|e| (e.u + base, e.v + base)));
        base += n;
    }
    dpc_graph::Graph::from_edges(base, &edges)
}

#[test]
fn distributed_summary_fold_is_byte_identical_to_the_sequential_one() {
    use dpc_core::batch::BatchSummary;
    use dpc_service::client::Client;
    use std::time::Duration;

    // every node knows the other two as peers, so a summary certify
    // of a disconnected graph can delegate components across the ring
    let addrs = reserve_addrs(3);
    let handles: Vec<ServerHandle> = (0..3)
        .map(|i| {
            let cfg = ServeConfig {
                peers: addrs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| a.clone())
                    .collect(),
                ..ServeConfig::default()
            };
            serve(addrs[i].as_str(), cfg).unwrap()
        })
        .collect();

    // connected instances plus disconnected ones (twelve components
    // total across the unions — some are all but certain to rank onto
    // a peer of whichever node receives the graph)
    let mut graphs: Vec<dpc_graph::Graph> = (0..9)
        .map(|seed| generators::stacked_triangulation(16 + seed as u32, seed))
        .collect();
    for seed in 0..4u64 {
        graphs.push(disjoint_union(&[11, 14, 17], 100 + 10 * seed));
    }

    // the sequential reference: one node folds every outcome itself,
    // in input order, with the cache bypassed so both sweeps prove
    let mut single = Client::connect_with_retry(addrs[0].as_str(), Duration::from_secs(5)).unwrap();
    let seq_results: Vec<Result<_, String>> = graphs
        .iter()
        .map(|g| {
            match single
                .certify(g, CertifyOptions::new().bypass().summary())
                .unwrap()
            {
                Response::CertifiedSummary { outcome, .. } => Ok(outcome),
                Response::Declined { reason, .. } => Err(reason),
                other => panic!("{other:?}"),
            }
        })
        .collect();
    let seq_summary = BatchSummary::fold(seq_results.iter().map(|r| r.as_ref().ok()));
    assert_eq!(seq_summary.instances, graphs.len());
    assert_eq!(seq_summary.proved, graphs.len(), "planar inputs all prove");

    // the distributed sweep over the full ring
    let mut cc = ClusterClient::new(addrs.clone()).unwrap();
    let report = cc.certify_distributed(&graphs, true, SchemeId::PLANARITY);
    assert_eq!(
        report.summary, seq_summary,
        "the merged summary must equal the sequential fold exactly"
    );
    for (i, (d, s)) in report.results.iter().zip(&seq_results).enumerate() {
        assert_eq!(
            d.as_ref().ok(),
            s.as_ref().ok(),
            "per-graph outcome {i} diverged"
        );
    }
    assert!(
        report.nodes_used >= 2,
        "rendezvous must spread 13 graphs: {report:?}"
    );
    assert_eq!(report.delegated, graphs.len() as u64);
    assert_eq!(report.delegate_errors, 0);

    // server-side evidence: the fleet merged disconnected outcomes,
    // and at least one component prove crossed the ring to a peer
    let mut merges = 0u64;
    let mut delegated = 0u64;
    for addr in &addrs {
        let mut c = Client::connect(addr.as_str()).unwrap();
        let stats = c.stats().unwrap();
        merges += stats.outcome_merges;
        delegated += stats.delegated_proves;
    }
    assert!(merges >= 4, "each disjoint union merges: {merges}");
    assert!(delegated >= 1, "no component prove was delegated");

    for h in handles {
        h.shutdown();
    }
}
