//! Blocking client for the certification service.
//!
//! One [`Client`] owns one TCP connection. The simple path is
//! [`Client::call`] (send one request, wait for its response); for
//! load generation the split [`Client::send`] / [`Client::recv`] pair
//! pipelines many requests on the wire — the server answers in
//! request order per connection, so responses come back in send
//! order.

use crate::metrics::{SlowLogEntry, StatsSnapshot};
use crate::registry::SchemeId;
use crate::store::StoreRecord;
use crate::wire::{self, Request, Response, WireError};
use dpc_graph::Graph;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    in_flight: u64,
}

impl Client {
    /// Connects to a running `dpc serve`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            in_flight: 0,
        })
    }

    /// Connects, retrying refused/failed dials for up to `wait`
    /// (polling every 25 ms, with the final sleep clipped to the
    /// remaining budget so the deadline is honored exactly rather
    /// than overshot by up to a full poll interval). Made for racing
    /// a server that is still booting — `dpc query --wait-ms` and CI
    /// smoke steps use this instead of shell sleep loops. The last
    /// dial error is returned when the deadline passes.
    pub fn connect_with_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        wait: Duration,
    ) -> io::Result<Client> {
        let deadline = Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => match retry_sleep(Instant::now(), deadline) {
                    Some(pause) => std::thread::sleep(pause),
                    None => return Err(e),
                },
            }
        }
    }

    /// Sends a request without waiting (pipelining). Pair with
    /// [`Client::recv`].
    pub fn send(&mut self, req: &Request) -> Result<(), WireError> {
        self.send_body(&req.encode())
    }

    /// Sends a pre-encoded frame body (see the `wire::encode_*_request`
    /// helpers) without waiting. Pair with [`Client::recv`].
    pub fn send_body(&mut self, body: &[u8]) -> Result<(), WireError> {
        wire::write_frame(&mut self.writer, body)?;
        self.writer.flush()?;
        self.in_flight += 1;
        Ok(())
    }

    fn call_body(&mut self, body: &[u8]) -> Result<Response, WireError> {
        self.send_body(body)?;
        self.recv()
    }

    /// Receives the next pipelined response.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        let body = wire::read_frame(&mut self.reader)?.ok_or_else(|| {
            WireError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        self.in_flight = self.in_flight.saturating_sub(1);
        Response::decode(&body)
    }

    /// One request, one response.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send(req)?;
        self.recv()
    }

    /// Requests sent whose responses have not been received yet.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Certifies a graph under the planarity scheme (encoded straight
    /// from the borrow — no clone). `bypass_cache` forces a fresh
    /// prove (cold latency measurements).
    pub fn certify(&mut self, graph: &Graph, bypass_cache: bool) -> Result<Response, WireError> {
        self.certify_scheme(graph, bypass_cache, SchemeId::PLANARITY)
    }

    /// Certifies a graph under any registered scheme.
    pub fn certify_scheme(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        self.call_body(&wire::encode_certify_request(graph, bypass_cache, scheme))
    }

    /// Certifies a graph but asks for only the measured outcome —
    /// no certificate assignment on the wire. The response shape the
    /// distributed prover merges.
    pub fn certify_summary(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        self.call_body(&wire::encode_certify_summary_request(
            graph,
            bypass_cache,
            scheme,
        ))
    }

    /// Streams a graph to the server in CRC-checked chunks and
    /// returns the final summary-certify response. The encoding
    /// happens here in one pass; what the chunking bounds is the
    /// *server's* peak reassembly memory (per-chunk, not per-graph),
    /// which is the side that matters when many clients upload giant
    /// graphs at once. `chunk_bytes` is clipped to
    /// [`wire::MAX_CHUNK_BYTES`]; pass
    /// [`wire::DEFAULT_CHUNK_BYTES`] unless measuring.
    ///
    /// All frames are pipelined — Begin, every chunk, End go out
    /// before the first ack is read — so the upload costs one round
    /// trip plus bandwidth, and every ack is still verified (session
    /// id and running chunk count) before the final response is
    /// returned.
    pub fn certify_chunked(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
        chunk_bytes: usize,
    ) -> Result<Response, WireError> {
        let chunk_bytes = chunk_bytes.clamp(1, wire::MAX_CHUNK_BYTES);
        let mut payload = Vec::new();
        wire::encode_graph(&mut payload, graph);
        let session = NEXT_CHUNK_SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.send_body(&wire::encode_chunk_begin_request(
            session,
            bypass_cache,
            scheme,
        ))?;
        let mut chunks = 0u64;
        for piece in payload.chunks(chunk_bytes) {
            self.send_body(&wire::encode_chunk_request(session, chunks, piece))?;
            chunks += 1;
        }
        self.send_body(&wire::encode_chunk_end_request(
            session,
            chunks,
            payload.len() as u64,
            crate::store::crc32(&payload),
        ))?;
        // the Begin ack plus one ack per chunk, in order
        for expect in 0..=chunks {
            match self.recv()? {
                Response::ChunkAck {
                    session: s,
                    received,
                } if s == session && received == expect => {}
                Response::Error(e) => return Err(WireError::Protocol(e)),
                other => {
                    return Err(WireError::Protocol(format!(
                        "unexpected chunk ack: {other:?}"
                    )))
                }
            }
        }
        self.recv()
    }

    /// Planarity check with witness summary.
    pub fn check(&mut self, graph: &Graph) -> Result<Response, WireError> {
        self.check_scheme(graph, SchemeId::PLANARITY)
    }

    /// Centralized membership check under any registered scheme.
    pub fn check_scheme(&mut self, graph: &Graph, scheme: SchemeId) -> Result<Response, WireError> {
        self.call_body(&wire::encode_check_request(graph, scheme))
    }

    /// Server-side graph generation.
    pub fn gen(&mut self, family: &str, n: u32, seed: u64) -> Result<Graph, WireError> {
        self.gen_scheme(family, n, seed, SchemeId::PLANARITY)
    }

    /// Server-side graph generation with a scheme id, which routes
    /// the `"default"` family to the scheme's canonical yes-instance
    /// generator (concrete family names ignore the id).
    pub fn gen_scheme(
        &mut self,
        family: &str,
        n: u32,
        seed: u64,
        scheme: SchemeId,
    ) -> Result<Graph, WireError> {
        match self.call_body(&wire::encode_gen_request(family, n, seed, scheme))? {
            Response::Generated(g) => Ok(g),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to Gen: {other:?}"
            ))),
        }
    }

    /// Adversarial soundness probe against the planarity scheme.
    pub fn soundness(&mut self, graph: &Graph, seed: u64) -> Result<Response, WireError> {
        self.soundness_scheme(graph, seed, SchemeId::PLANARITY)
    }

    /// Adversarial soundness probe against any registered scheme that
    /// supports it.
    pub fn soundness_scheme(
        &mut self,
        graph: &Graph,
        seed: u64,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        self.call_body(&wire::encode_soundness_request(graph, seed, scheme))
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        match self.call_body(&wire::encode_stats_request())? {
            Response::Stats(s) => Ok(*s),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to Stats: {other:?}"
            ))),
        }
    }

    /// The server's slow-request log, newest first (requests whose
    /// end-to-end latency crossed its `--slow-ms` threshold).
    pub fn slowlog(&mut self) -> Result<Vec<SlowLogEntry>, WireError> {
        match self.call_body(&wire::encode_slowlog_request())? {
            Response::SlowLog(entries) => Ok(entries),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to SlowLog: {other:?}"
            ))),
        }
    }

    /// The server's store content-key digests — the cheap half of an
    /// anti-entropy exchange (see [`Client::store_push`]).
    pub fn store_list(&mut self) -> Result<Vec<u128>, WireError> {
        match self.call_body(&wire::encode_store_list_request())? {
            Response::StoreKeys(keys) => Ok(keys),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to StoreList: {other:?}"
            ))),
        }
    }

    /// Streams certificate records into the server's store; returns
    /// `(merged, duplicates)` — records absorbed vs. keys the server
    /// already held. Replica writes, read-repair, and the anti-entropy
    /// sweep all funnel through this one request kind.
    pub fn store_push(&mut self, records: &[StoreRecord]) -> Result<(u64, u64), WireError> {
        match self.call_body(&wire::encode_store_push_request(records))? {
            Response::StorePushed { merged, duplicates } => Ok((merged, duplicates)),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to StorePush: {other:?}"
            ))),
        }
    }
}

/// Process-wide chunk-session id source. Session ids only need to be
/// distinct per connection (the server tracks one session per
/// connection), but globally unique ids make interleaved-upload logs
/// unambiguous for free.
static NEXT_CHUNK_SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Poll interval of [`Client::connect_with_retry`].
const RETRY_POLL: Duration = Duration::from_millis(25);

/// How long the retry loop may sleep after a failed dial at `now`:
/// the 25 ms poll interval, clipped to the time left before
/// `deadline`. `None` means the deadline has passed and the loop must
/// return the dial error instead of sleeping — the caller never
/// oversleeps its `--wait-ms` budget by a partial poll.
fn retry_sleep(now: Instant, deadline: Instant) -> Option<Duration> {
    if now >= deadline {
        return None;
    }
    Some((deadline - now).min(RETRY_POLL))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_sleep_clips_to_the_remaining_budget() {
        let now = Instant::now();
        let deadline = now + Duration::from_millis(7);
        assert_eq!(retry_sleep(now, deadline), Some(Duration::from_millis(7)));
        let deadline = now + Duration::from_secs(10);
        assert_eq!(retry_sleep(now, deadline), Some(RETRY_POLL));
    }

    #[test]
    fn retry_sleep_refuses_past_deadlines() {
        let now = Instant::now();
        assert_eq!(retry_sleep(now, now), None);
        assert_eq!(retry_sleep(now + Duration::from_millis(1), now), None);
    }

    #[test]
    fn connect_with_retry_honors_sub_poll_deadlines() {
        // a port with (almost certainly) no listener: bind-and-drop
        // reserves one the OS will refuse connections to
        let addr = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap()
        };
        let wait = Duration::from_millis(40);
        let started = Instant::now();
        let err = Client::connect_with_retry(addr, wait);
        let took = started.elapsed();
        assert!(err.is_err(), "no listener, the dial must fail");
        // the pre-fix loop slept a flat 25 ms past the deadline and
        // could overshoot to ~65 ms; the clipped loop stays within
        // one dial + scheduling slop of the budget
        assert!(
            took < wait + Duration::from_millis(15),
            "overshot --wait-ms: {took:?} for a {wait:?} budget"
        );
        assert!(took >= wait, "returned before the deadline: {took:?}");
    }
}
