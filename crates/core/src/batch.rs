//! Parallel batch execution engine.
//!
//! Scaling experiments run one scheme over hundreds or thousands of
//! graphs. [`BatchRunner`] executes such a batch across worker threads
//! (std scoped threads with an atomic work queue — the environment
//! vendors no external crates, so the pool is hand-rolled rather than
//! rayon-backed) and folds the per-instance [`Outcome`]s into a
//! [`BatchSummary`].
//!
//! Determinism is a hard guarantee: instance `i`'s result depends only
//! on instance `i`, results are stored by index, and the summary is
//! folded from the index-ordered results with integer accumulators —
//! so a parallel run is byte-identical to a sequential fold no matter
//! the thread count or scheduling. The `batch_determinism` integration
//! test in `dpc-bench` holds the engine to this.

use crate::harness::{run_pls, Outcome};
use crate::scheme::{ProofLabelingScheme, ProveError};
use dpc_graph::Graph;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Result of one batch instance: the scheme's outcome, or the prover's
/// refusal (the expected result on no-instances).
pub type InstanceResult = Result<Outcome, ProveError>;

/// Order-independent aggregate statistics over a batch.
///
/// Every field is folded from integer per-instance values in index
/// order; the derived averages divide those totals, so two runs over
/// the same instances always agree exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of instances in the batch.
    pub instances: usize,
    /// Instances where the prover produced an assignment.
    pub proved: usize,
    /// Instances where the prover declined (`ProveError`).
    pub declined: usize,
    /// Proved instances on which every node accepted.
    pub accepted: usize,
    /// Total rejecting nodes across all proved instances.
    pub rejecting_nodes: u64,
    /// Total nodes across all proved instances.
    pub nodes: u64,
    /// Largest certificate seen in any proved instance, in bits.
    pub max_cert_bits: usize,
    /// Total certificate bits across all proved instances.
    pub total_cert_bits: u64,
    /// Largest single message seen, in bits.
    pub max_message_bits: usize,
    /// Total message bits over all edges, rounds, and instances.
    pub total_message_bits: u64,
    /// Largest round count of any proved instance (1 for a PLS).
    pub max_rounds: usize,
}

impl BatchSummary {
    /// Folds the summary from index-ordered per-instance results.
    pub fn from_results(results: &[InstanceResult]) -> Self {
        Self::fold(results.iter().map(|r| r.as_ref().ok()))
    }

    /// Folds the summary from index-ordered per-instance outcomes,
    /// with `None` marking a declined instance. This is the one
    /// integer fold behind every summary in the workspace — local
    /// batches ([`Self::from_results`]) and fleet-distributed merges
    /// (which carry outcomes without a `ProveError`) go through it,
    /// which is what makes a distributed summary byte-identical to
    /// the sequential single-node one.
    pub fn fold<'a>(outcomes: impl Iterator<Item = Option<&'a Outcome>>) -> Self {
        let mut s = BatchSummary {
            instances: 0,
            proved: 0,
            declined: 0,
            accepted: 0,
            rejecting_nodes: 0,
            nodes: 0,
            max_cert_bits: 0,
            total_cert_bits: 0,
            max_message_bits: 0,
            total_message_bits: 0,
            max_rounds: 0,
        };
        for r in outcomes {
            s.instances += 1;
            match r {
                Some(out) => {
                    s.proved += 1;
                    if out.all_accept() {
                        s.accepted += 1;
                    }
                    s.rejecting_nodes += out.reject_count() as u64;
                    s.nodes += out.verdicts.len() as u64;
                    s.max_cert_bits = s.max_cert_bits.max(out.max_cert_bits);
                    s.total_cert_bits += out.total_cert_bits as u64;
                    s.max_message_bits = s.max_message_bits.max(out.max_message_bits);
                    s.total_message_bits += out.total_message_bits;
                    s.max_rounds = s.max_rounds.max(out.rounds);
                }
                None => s.declined += 1,
            }
        }
        s
    }

    /// Fraction of proved instances on which every node accepted.
    pub fn accept_rate(&self) -> f64 {
        if self.proved == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proved as f64
        }
    }

    /// Average certificate size in bits over all nodes of all proved
    /// instances.
    pub fn avg_cert_bits(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total_cert_bits as f64 / self.nodes as f64
        }
    }
}

impl fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instances ({} proved, {} declined): accept rate {:.3}, \
             cert bits max {} avg {:.1}, msg bits max {} total {}",
            self.instances,
            self.proved,
            self.declined,
            self.accept_rate(),
            self.max_cert_bits,
            self.avg_cert_bits(),
            self.max_message_bits,
            self.total_message_bits,
        )
    }
}

/// A finished batch: index-ordered per-instance results, the folded
/// summary, and the wall-clock time of the run (the only field that
/// varies between parallel and sequential execution).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// `results[i]` is the outcome on the `i`-th input graph.
    pub results: Vec<InstanceResult>,
    /// Aggregate statistics (deterministic).
    pub summary: BatchSummary,
    /// Wall-clock duration of the batch.
    pub wall: Duration,
}

/// Runs a proof-labeling scheme over a batch of graphs in parallel.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// Runner using every available core.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        BatchRunner { threads }
    }

    /// Runner with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `scheme` (honest prover + 1-round verifier) on every graph,
    /// in parallel, returning index-ordered results.
    pub fn run<S>(&self, scheme: &S, graphs: impl IntoIterator<Item = Graph>) -> BatchReport
    where
        S: ProofLabelingScheme + Sync,
    {
        let graphs: Vec<Graph> = graphs.into_iter().collect();
        self.run_slice(scheme, &graphs)
    }

    /// Runs the batch over borrowed graphs.
    pub fn run_slice<S>(&self, scheme: &S, graphs: &[Graph]) -> BatchReport
    where
        S: ProofLabelingScheme + Sync,
    {
        let start = Instant::now();
        let results = self.map(graphs, |g| run_pls(scheme, g));
        Self::report(results, start.elapsed())
    }

    /// Applies `f` to every item across the worker pool, returning the
    /// outputs in input order (index-addressed, so the result is
    /// independent of scheduling). This is the engine under
    /// [`BatchRunner::run`]; it is public so non-PLS pipelines (witness
    /// certification, instance construction) can batch through the same
    /// pool.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len()).max(1);
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut partials: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            partials = handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect();
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in partials.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is claimed exactly once"))
            .collect()
    }

    /// Sequential reference fold over the same inputs — the determinism
    /// guard for [`BatchRunner::run`] and a baseline for speedup
    /// measurements.
    pub fn run_sequential<S>(scheme: &S, graphs: impl IntoIterator<Item = Graph>) -> BatchReport
    where
        S: ProofLabelingScheme,
    {
        let start = Instant::now();
        let results: Vec<InstanceResult> =
            graphs.into_iter().map(|g| run_pls(scheme, &g)).collect();
        Self::report(results, start.elapsed())
    }

    fn report(results: Vec<InstanceResult>, wall: Duration) -> BatchReport {
        let summary = BatchSummary::from_results(&results);
        BatchReport {
            results,
            summary,
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::planarity::PlanarityScheme;
    use dpc_graph::generators;

    fn mixed_batch() -> Vec<Graph> {
        let mut graphs = Vec::new();
        for seed in 0..30u64 {
            graphs.push(generators::stacked_triangulation(40 + seed as u32, seed));
            graphs.push(generators::random_planar(30, 0.5, seed));
            // every third instance is non-planar: prover declines
            if seed % 3 == 0 {
                graphs.push(generators::planted_kuratowski(25, seed % 2 == 0, 1, seed));
            }
        }
        graphs
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let graphs = mixed_batch();
        let scheme = PlanarityScheme::new();
        let seq = BatchRunner::run_sequential(&scheme, graphs.clone());
        for threads in [2, 3, 8] {
            let par = BatchRunner::with_threads(threads).run(&scheme, graphs.clone());
            assert_eq!(par.results, seq.results, "threads = {threads}");
            assert_eq!(par.summary, seq.summary, "threads = {threads}");
        }
    }

    #[test]
    fn summary_counts_declines_and_accepts() {
        let graphs = vec![
            generators::grid(5, 5),
            generators::complete(5), // non-planar: declined
            generators::cycle(12),
        ];
        let report = BatchRunner::with_threads(2).run(&PlanarityScheme::new(), graphs);
        assert_eq!(report.summary.instances, 3);
        assert_eq!(report.summary.proved, 2);
        assert_eq!(report.summary.declined, 1);
        assert_eq!(report.summary.accepted, 2);
        assert_eq!(report.summary.max_rounds, 1);
        assert!(report.summary.max_cert_bits > 0);
        assert!((report.summary.accept_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_totals_are_integer_folds() {
        let graphs = vec![generators::grid(4, 4), generators::grid(6, 6)];
        let report = BatchRunner::with_threads(4).run(&PlanarityScheme::new(), graphs.clone());
        let mut cert_total = 0u64;
        let mut msg_total = 0u64;
        for r in &report.results {
            let out = r.as_ref().unwrap();
            cert_total += out.total_cert_bits as u64;
            msg_total += out.total_message_bits;
        }
        assert_eq!(report.summary.total_cert_bits, cert_total);
        assert_eq!(report.summary.total_message_bits, msg_total);
        assert_eq!(report.summary.nodes, (16 + 36) as u64);
    }

    #[test]
    fn map_preserves_input_order() {
        let runner = BatchRunner::with_threads(7);
        let items: Vec<u64> = (0..500).collect();
        let out = runner.map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        // non-Clone results work too
        let strings = runner.map(&items, |&x| format!("#{x}"));
        assert_eq!(strings[499], "#499");
    }

    #[test]
    fn empty_batch() {
        let report = BatchRunner::new().run(&PlanarityScheme::new(), Vec::new());
        assert_eq!(report.summary.instances, 0);
        assert_eq!(report.summary.accept_rate(), 0.0);
        assert_eq!(report.summary.avg_cert_bits(), 0.0);
    }
}
