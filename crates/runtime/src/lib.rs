//! Synchronous distributed-network simulator and bit-exact certificate
//! encoding.
//!
//! The paper's model (Section 2) is the standard synchronous
//! message-passing network: nodes with unique `O(log n)`-bit identifiers,
//! one round of communication for proof-labeling-scheme verification.
//! This crate provides:
//!
//! * [`bits`] — a bit-level writer/reader (fixed-width fields and LEB128
//!   varints) so certificate sizes are measured **exactly in bits**, the
//!   complexity measure of the paper;
//! * [`sim`] — a deterministic synchronous executor with per-round
//!   message accounting (max bits per edge per round = the CONGEST
//!   measure), used to run every verifier in this workspace. Payloads
//!   are reference-counted: delivering a broadcast over an edge is an
//!   O(1) handle clone, never a byte copy;
//! * [`baseline`] — the deep-copy reference executor kept for
//!   benchmarking the zero-copy delivery path against;
//! * [`log`] — a tiny level-filtered structured logger
//!   (`DPC_LOG=debug,reactor=trace`) shared by every binary in the
//!   workspace.

pub mod baseline;
pub mod bits;
pub mod log;
pub mod sim;

pub use bits::{
    get_bytes, get_string, get_uvarint, put_string, put_uvarint, BitReader, BitWriter, DecodeError,
};
pub use sim::{run_protocol, run_protocol_states, NodeCtx, Payload, Protocol, RunReport, Step};
