//! Blocking client for the certification service.
//!
//! One [`Client`] owns one TCP connection. The simple path is
//! [`Client::call`] (send one request, wait for its response); for
//! load generation the split [`Client::send`] / [`Client::recv`] pair
//! pipelines many requests on the wire — the server answers in
//! request order per connection, so responses come back in send
//! order.
//!
//! The request surface is one method per request family, each taking
//! an options builder (every combination the wire supports, one call
//! shape):
//!
//! ```no_run
//! # use dpc_service::{Client, CertifyOptions, SchemeId};
//! # let g = dpc_graph::generators::cycle(8);
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! client.certify(&g, CertifyOptions::new())?; // plain planarity
//! client.certify(
//!     &g,
//!     CertifyOptions::new()
//!         .scheme(SchemeId::SPANNING_TREE)
//!         .bypass()
//!         .summary(),
//! )?;
//! # Ok::<(), dpc_service::WireError>(())
//! ```
//!
//! The pre-redesign `certify_scheme` / `certify_summary` /
//! `*_scheme` methods survive as deprecated forwarders onto the
//! options surface.

use crate::metrics::{SlowLogEntry, StatsSnapshot};
use crate::registry::SchemeId;
use crate::store::StoreRecord;
use crate::wire::{self, Request, Response, WireError};
use dpc_graph::Graph;
use dpc_interactive::dmam::{DmamPlanarity, DmamProtocol};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Options of [`Client::certify`]: scheme routing plus the cache,
/// shape, and transport axes that used to be separate methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifyOptions {
    pub(crate) scheme: SchemeId,
    pub(crate) bypass: bool,
    pub(crate) cached_only: bool,
    pub(crate) summary: bool,
    pub(crate) chunked: Option<usize>,
}

impl CertifyOptions {
    /// Plain planarity certify through the cache, full response.
    pub fn new() -> CertifyOptions {
        CertifyOptions {
            scheme: SchemeId::PLANARITY,
            bypass: false,
            cached_only: false,
            summary: false,
            chunked: None,
        }
    }

    /// Certify under this registered scheme instead of planarity.
    pub fn scheme(mut self, scheme: SchemeId) -> CertifyOptions {
        self.scheme = scheme;
        self
    }

    /// Skip the server cache and force a fresh prove (cold-latency
    /// measurements).
    pub fn bypass(mut self) -> CertifyOptions {
        self.bypass = true;
        self
    }

    /// Only answer from cache: a warm server answers normally, a cold
    /// one replies `Error(`[`wire::NOT_CACHED`]`)` without proving —
    /// the replica-probe shape. Overrides `bypass` and `summary` (the
    /// wire rejects the combinations).
    pub fn cached_only(mut self) -> CertifyOptions {
        self.cached_only = true;
        self
    }

    /// Ask for the measured outcome only — no certificate assignment
    /// on the wire; disconnected graphs are proved per component and
    /// merged.
    pub fn summary(mut self) -> CertifyOptions {
        self.summary = true;
        self
    }

    /// Stream the graph in CRC-checked chunks of `chunk_bytes`
    /// (clipped to [`wire::MAX_CHUNK_BYTES`]; pass
    /// [`wire::DEFAULT_CHUNK_BYTES`] unless measuring). Implies
    /// `summary` — that is the only shape the chunk protocol answers.
    pub fn chunked(mut self, chunk_bytes: usize) -> CertifyOptions {
        self.chunked = Some(chunk_bytes);
        self
    }
}

impl Default for CertifyOptions {
    fn default() -> CertifyOptions {
        CertifyOptions::new()
    }
}

/// The pre-redesign two-argument shape: `certify(&g, bypass_cache)`.
impl From<bool> for CertifyOptions {
    fn from(bypass_cache: bool) -> CertifyOptions {
        let opts = CertifyOptions::new();
        if bypass_cache {
            opts.bypass()
        } else {
            opts
        }
    }
}

/// Options of [`Client::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckOptions {
    pub(crate) scheme: SchemeId,
}

impl CheckOptions {
    /// Planarity check with witness summary.
    pub fn new() -> CheckOptions {
        CheckOptions::default()
    }

    /// Membership check under this registered scheme instead.
    pub fn scheme(mut self, scheme: SchemeId) -> CheckOptions {
        self.scheme = scheme;
        self
    }
}

/// `check(&g, scheme_id)` reads naturally for the one-axis case.
impl From<SchemeId> for CheckOptions {
    fn from(scheme: SchemeId) -> CheckOptions {
        CheckOptions::new().scheme(scheme)
    }
}

/// Options of [`Client::gen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenOptions {
    pub(crate) scheme: SchemeId,
}

impl GenOptions {
    /// Scheme-agnostic generation (the `"default"` family maps to
    /// planarity's canonical yes-instances).
    pub fn new() -> GenOptions {
        GenOptions::default()
    }

    /// Route the `"default"` family to this scheme's canonical
    /// yes-instance generator (concrete family names ignore it).
    pub fn scheme(mut self, scheme: SchemeId) -> GenOptions {
        self.scheme = scheme;
        self
    }
}

impl From<SchemeId> for GenOptions {
    fn from(scheme: SchemeId) -> GenOptions {
        GenOptions::new().scheme(scheme)
    }
}

/// Options of [`Client::soundness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoundnessOptions {
    pub(crate) seed: u64,
    pub(crate) scheme: SchemeId,
}

impl SoundnessOptions {
    /// Seed 0 against the planarity scheme.
    pub fn new() -> SoundnessOptions {
        SoundnessOptions::default()
    }

    /// Seed of the replay battery.
    pub fn seed(mut self, seed: u64) -> SoundnessOptions {
        self.seed = seed;
        self
    }

    /// Probe this registered scheme instead of planarity.
    pub fn scheme(mut self, scheme: SchemeId) -> SoundnessOptions {
        self.scheme = scheme;
        self
    }
}

/// The pre-redesign two-argument shape: `soundness(&g, seed)`.
impl From<u64> for SoundnessOptions {
    fn from(seed: u64) -> SoundnessOptions {
        SoundnessOptions::new().seed(seed)
    }
}

/// Options of [`Client::interactive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InteractiveOptions {
    pub(crate) seed: u64,
    pub(crate) scheme: SchemeId,
}

impl InteractiveOptions {
    /// Seed 0 under the planarity scheme (the one scheme whose
    /// registry entry runs interactive sessions).
    pub fn new() -> InteractiveOptions {
        InteractiveOptions::default()
    }

    /// Session seed: the server derives its public coin from this, so
    /// the whole transcript — challenge and verdict — replays from
    /// the seed alone.
    pub fn seed(mut self, seed: u64) -> InteractiveOptions {
        self.seed = seed;
        self
    }

    /// Open the session under this scheme id (the server declines
    /// schemes without the interactive capability before keeping any
    /// state).
    pub fn scheme(mut self, scheme: SchemeId) -> InteractiveOptions {
        self.scheme = scheme;
        self
    }
}

/// `interactive(&g, seed)` for the common one-axis case.
impl From<u64> for InteractiveOptions {
    fn from(seed: u64) -> InteractiveOptions {
        InteractiveOptions::new().seed(seed)
    }
}

/// Options of [`Client::audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOptions {
    pub(crate) samples: u64,
    pub(crate) seed: u64,
}

impl AuditOptions {
    /// 64 sampled records, seed 0.
    pub fn new() -> AuditOptions {
        AuditOptions {
            samples: 64,
            seed: 0,
        }
    }

    /// Records the sweep samples (without replacement).
    pub fn samples(mut self, samples: u64) -> AuditOptions {
        self.samples = samples;
        self
    }

    /// Sampling seed — the same seed re-audits the same records.
    pub fn seed(mut self, seed: u64) -> AuditOptions {
        self.seed = seed;
        self
    }
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions::new()
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    in_flight: u64,
}

impl Client {
    /// Connects to a running `dpc serve`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            in_flight: 0,
        })
    }

    /// Connects, retrying refused/failed dials for up to `wait`
    /// (polling every 25 ms, with the final sleep clipped to the
    /// remaining budget so the deadline is honored exactly rather
    /// than overshot by up to a full poll interval). Made for racing
    /// a server that is still booting — `dpc query --wait-ms` and CI
    /// smoke steps use this instead of shell sleep loops. The last
    /// dial error is returned when the deadline passes.
    pub fn connect_with_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        wait: Duration,
    ) -> io::Result<Client> {
        let deadline = Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => match retry_sleep(Instant::now(), deadline) {
                    Some(pause) => std::thread::sleep(pause),
                    None => return Err(e),
                },
            }
        }
    }

    /// Sends a request without waiting (pipelining). Pair with
    /// [`Client::recv`].
    pub fn send(&mut self, req: &Request) -> Result<(), WireError> {
        self.send_body(&req.encode())
    }

    /// Sends a pre-encoded frame body (see the `wire::encode_*_request`
    /// helpers) without waiting. Pair with [`Client::recv`].
    pub fn send_body(&mut self, body: &[u8]) -> Result<(), WireError> {
        wire::write_frame(&mut self.writer, body)?;
        self.writer.flush()?;
        self.in_flight += 1;
        Ok(())
    }

    fn call_body(&mut self, body: &[u8]) -> Result<Response, WireError> {
        self.send_body(body)?;
        self.recv()
    }

    /// Receives the next pipelined response.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        let body = wire::read_frame(&mut self.reader)?.ok_or_else(|| {
            WireError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        self.in_flight = self.in_flight.saturating_sub(1);
        Response::decode(&body)
    }

    /// One request, one response.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send(req)?;
        self.recv()
    }

    /// Requests sent whose responses have not been received yet.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Certifies a graph (encoded straight from the borrow — no
    /// clone). Every shape the wire supports is one option away:
    /// `client.certify(&g, CertifyOptions::new().scheme(id).bypass())`.
    /// A plain `bool` still reads as the old bypass-cache flag.
    pub fn certify(
        &mut self,
        graph: &Graph,
        opts: impl Into<CertifyOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        if let Some(chunk_bytes) = opts.chunked {
            return self.certify_via_chunks(graph, opts.bypass, opts.scheme, chunk_bytes);
        }
        if opts.cached_only {
            return self.call_body(&wire::encode_certify_probe_request(graph, opts.scheme));
        }
        if opts.summary {
            return self.call_body(&wire::encode_certify_summary_request(
                graph,
                opts.bypass,
                opts.scheme,
            ));
        }
        self.call_body(&wire::encode_certify_request(
            graph,
            opts.bypass,
            opts.scheme,
        ))
    }

    /// Certifies a graph under any registered scheme.
    #[deprecated(note = "use certify(graph, CertifyOptions::new().scheme(..))")]
    pub fn certify_scheme(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        let opts = CertifyOptions::from(bypass_cache).scheme(scheme);
        self.certify(graph, opts)
    }

    /// Certifies a graph but asks for only the measured outcome.
    #[deprecated(note = "use certify(graph, CertifyOptions::new().summary())")]
    pub fn certify_summary(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        let opts = CertifyOptions::from(bypass_cache).scheme(scheme).summary();
        self.certify(graph, opts)
    }

    /// Streams a graph to the server in CRC-checked chunks.
    #[deprecated(note = "use certify(graph, CertifyOptions::new().chunked(..))")]
    pub fn certify_chunked(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
        chunk_bytes: usize,
    ) -> Result<Response, WireError> {
        let opts = CertifyOptions::from(bypass_cache)
            .scheme(scheme)
            .chunked(chunk_bytes);
        self.certify(graph, opts)
    }

    /// The chunked certify transport (`CertifyOptions::chunked`):
    /// streams the one-pass encoding in CRC-checked chunks and
    /// returns the final summary-certify response. What the chunking
    /// bounds is the *server's* peak reassembly memory (per-chunk,
    /// not per-graph), which is the side that matters when many
    /// clients upload giant graphs at once.
    ///
    /// All frames are pipelined — Begin, every chunk, End go out
    /// before the first ack is read — so the upload costs one round
    /// trip plus bandwidth, and every ack is still verified (session
    /// id and running chunk count) before the final response is
    /// returned.
    fn certify_via_chunks(
        &mut self,
        graph: &Graph,
        bypass_cache: bool,
        scheme: SchemeId,
        chunk_bytes: usize,
    ) -> Result<Response, WireError> {
        let chunk_bytes = chunk_bytes.clamp(1, wire::MAX_CHUNK_BYTES);
        let mut payload = Vec::new();
        wire::encode_graph(&mut payload, graph);
        let session = NEXT_CHUNK_SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.send_body(&wire::encode_chunk_begin_request(
            session,
            bypass_cache,
            scheme,
        ))?;
        let mut chunks = 0u64;
        for piece in payload.chunks(chunk_bytes) {
            self.send_body(&wire::encode_chunk_request(session, chunks, piece))?;
            chunks += 1;
        }
        self.send_body(&wire::encode_chunk_end_request(
            session,
            chunks,
            payload.len() as u64,
            crate::store::crc32(&payload),
        ))?;
        // the Begin ack plus one ack per chunk, in order
        for expect in 0..=chunks {
            match self.recv()? {
                Response::ChunkAck {
                    session: s,
                    received,
                } if s == session && received == expect => {}
                Response::Error(e) => return Err(WireError::Protocol(e)),
                other => {
                    return Err(WireError::Protocol(format!(
                        "unexpected chunk ack: {other:?}"
                    )))
                }
            }
        }
        self.recv()
    }

    /// Centralized membership check (`CheckOptions` routes it to any
    /// registered scheme; planarity answers with the rich
    /// embedding/witness verdicts).
    pub fn check(
        &mut self,
        graph: &Graph,
        opts: impl Into<CheckOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        self.call_body(&wire::encode_check_request(graph, opts.scheme))
    }

    /// Centralized membership check under any registered scheme.
    #[deprecated(note = "use check(graph, CheckOptions::new().scheme(..))")]
    pub fn check_scheme(&mut self, graph: &Graph, scheme: SchemeId) -> Result<Response, WireError> {
        self.check(graph, scheme)
    }

    /// Server-side graph generation.
    pub fn gen(
        &mut self,
        family: &str,
        n: u32,
        seed: u64,
        opts: impl Into<GenOptions>,
    ) -> Result<Graph, WireError> {
        let opts = opts.into();
        match self.call_body(&wire::encode_gen_request(family, n, seed, opts.scheme))? {
            Response::Generated(g) => Ok(g),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to Gen: {other:?}"
            ))),
        }
    }

    /// Server-side graph generation with a scheme id.
    #[deprecated(note = "use gen(family, n, seed, GenOptions::new().scheme(..))")]
    pub fn gen_scheme(
        &mut self,
        family: &str,
        n: u32,
        seed: u64,
        scheme: SchemeId,
    ) -> Result<Graph, WireError> {
        self.gen(family, n, seed, scheme)
    }

    /// Adversarial soundness probe (`SoundnessOptions` carries the
    /// replay seed and scheme; a plain `u64` still reads as the old
    /// seed argument).
    pub fn soundness(
        &mut self,
        graph: &Graph,
        opts: impl Into<SoundnessOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        self.call_body(&wire::encode_soundness_request(
            graph,
            opts.seed,
            opts.scheme,
        ))
    }

    /// Adversarial soundness probe against any registered scheme.
    #[deprecated(note = "use soundness(graph, SoundnessOptions::new().seed(..).scheme(..))")]
    pub fn soundness_scheme(
        &mut self,
        graph: &Graph,
        seed: u64,
        scheme: SchemeId,
    ) -> Result<Response, WireError> {
        self.soundness(graph, SoundnessOptions::new().seed(seed).scheme(scheme))
    }

    /// Runs one full interactive-certification session (wire v8) and
    /// returns the closing [`Response::Verdict`]. The client plays
    /// Merlin: it computes the dMAM commitment locally, opens the
    /// session with `InteractiveBegin` (committing to the seed the
    /// server will derive its public coin from), answers the
    /// challenge with the protocol's response round, and hands back
    /// the server's verdict — which carries the measured soundness
    /// bound for this graph.
    pub fn interactive(
        &mut self,
        graph: &Graph,
        opts: impl Into<InteractiveOptions>,
    ) -> Result<Response, WireError> {
        let opts = opts.into();
        let proto = DmamPlanarity::new();
        let commit = proto
            .commit(graph)
            .map_err(|e| WireError::Protocol(format!("cannot open an interactive session: {e}")))?;
        let session = NEXT_CHUNK_SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let challenge = match self.call_body(&wire::encode_interactive_begin_request(
            session,
            opts.seed,
            graph,
            &commit,
            opts.scheme,
        ))? {
            Response::Challenge {
                session: s,
                challenge,
            } if s == session => challenge,
            Response::Error(e) => return Err(WireError::Protocol(e)),
            other => {
                return Err(WireError::Protocol(format!(
                    "unexpected response to InteractiveBegin: {other:?}"
                )))
            }
        };
        let response = proto.respond(graph, &commit, challenge);
        self.call_body(&wire::encode_interactive_respond_request(
            session, &response,
        ))
    }

    /// Triggers one on-demand audit pass on the server and returns
    /// its [`Response::AuditReport`] — the same sweep the background
    /// auditor (`dpc serve --audit`) runs, with the caller's sizing
    /// and seed.
    pub fn audit(&mut self, opts: impl Into<AuditOptions>) -> Result<Response, WireError> {
        let opts = opts.into();
        self.call_body(&wire::encode_audit_request(opts.samples, opts.seed))
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        match self.call_body(&wire::encode_stats_request())? {
            Response::Stats(s) => Ok(*s),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to Stats: {other:?}"
            ))),
        }
    }

    /// The server's slow-request log, newest first (requests whose
    /// end-to-end latency crossed its `--slow-ms` threshold).
    pub fn slowlog(&mut self) -> Result<Vec<SlowLogEntry>, WireError> {
        match self.call_body(&wire::encode_slowlog_request())? {
            Response::SlowLog(entries) => Ok(entries),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to SlowLog: {other:?}"
            ))),
        }
    }

    /// The server's store content-key digests — the cheap half of an
    /// anti-entropy exchange (see [`Client::store_push`]).
    pub fn store_list(&mut self) -> Result<Vec<u128>, WireError> {
        match self.call_body(&wire::encode_store_list_request())? {
            Response::StoreKeys(keys) => Ok(keys),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to StoreList: {other:?}"
            ))),
        }
    }

    /// Streams certificate records into the server's store; returns
    /// `(merged, duplicates)` — records absorbed vs. keys the server
    /// already held. Replica writes, read-repair, and the anti-entropy
    /// sweep all funnel through this one request kind.
    pub fn store_push(&mut self, records: &[StoreRecord]) -> Result<(u64, u64), WireError> {
        match self.call_body(&wire::encode_store_push_request(records))? {
            Response::StorePushed { merged, duplicates } => Ok((merged, duplicates)),
            Response::Error(e) => Err(WireError::Protocol(e)),
            other => Err(WireError::Protocol(format!(
                "unexpected response to StorePush: {other:?}"
            ))),
        }
    }
}

/// Process-wide chunk-session id source. Session ids only need to be
/// distinct per connection (the server tracks one session per
/// connection), but globally unique ids make interleaved-upload logs
/// unambiguous for free.
static NEXT_CHUNK_SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Poll interval of [`Client::connect_with_retry`].
const RETRY_POLL: Duration = Duration::from_millis(25);

/// How long the retry loop may sleep after a failed dial at `now`:
/// the 25 ms poll interval, clipped to the time left before
/// `deadline`. `None` means the deadline has passed and the loop must
/// return the dial error instead of sleeping — the caller never
/// oversleeps its `--wait-ms` budget by a partial poll.
fn retry_sleep(now: Instant, deadline: Instant) -> Option<Duration> {
    if now >= deadline {
        return None;
    }
    Some((deadline - now).min(RETRY_POLL))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_sleep_clips_to_the_remaining_budget() {
        let now = Instant::now();
        let deadline = now + Duration::from_millis(7);
        assert_eq!(retry_sleep(now, deadline), Some(Duration::from_millis(7)));
        let deadline = now + Duration::from_secs(10);
        assert_eq!(retry_sleep(now, deadline), Some(RETRY_POLL));
    }

    #[test]
    fn retry_sleep_refuses_past_deadlines() {
        let now = Instant::now();
        assert_eq!(retry_sleep(now, now), None);
        assert_eq!(retry_sleep(now + Duration::from_millis(1), now), None);
    }

    #[test]
    fn connect_with_retry_honors_sub_poll_deadlines() {
        // a port with (almost certainly) no listener: bind-and-drop
        // reserves one the OS will refuse connections to
        let addr = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap()
        };
        let wait = Duration::from_millis(40);
        let started = Instant::now();
        let err = Client::connect_with_retry(addr, wait);
        let took = started.elapsed();
        assert!(err.is_err(), "no listener, the dial must fail");
        // the pre-fix loop slept a flat 25 ms past the deadline and
        // could overshoot to ~65 ms; the clipped loop stays within
        // one dial + scheduling slop of the budget
        assert!(
            took < wait + Duration::from_millis(15),
            "overshot --wait-ms: {took:?} for a {wait:?} budget"
        );
        assert!(took >= wait, "returned before the deadline: {took:?}");
    }
}
