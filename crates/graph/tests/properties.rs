//! Property-based tests for the graph substrate.

use dpc_graph::{degeneracy, generators, graph6, minors, traversal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// graph6 round-trips preserve structure exactly.
    #[test]
    fn graph6_roundtrip(n in 1u32..80, m_extra in 0u32..120, seed in 0u64..1000) {
        let m = (n.saturating_sub(1) + m_extra).min(n * n.saturating_sub(1) / 2);
        let g = if m >= n.saturating_sub(1) && n >= 2 {
            generators::gnm_connected(n, m, seed)
        } else {
            generators::path(n.max(1))
        };
        let s = graph6::encode(&g);
        let h = graph6::decode(&s).unwrap();
        prop_assert_eq!(h.node_count(), g.node_count());
        prop_assert_eq!(h.edge_count(), g.edge_count());
        for e in g.edges() {
            prop_assert!(h.has_edge(e.u, e.v));
        }
        // idempotent: encoding the decoded graph gives the same string
        prop_assert_eq!(graph6::encode(&h), s);
    }

    /// graph6 round-trips every generator family, including
    /// shuffled-identifier variants (graph6 carries structure only, so
    /// the round trip must be id-independent), and the canonical hash
    /// of the structure survives the trip.
    #[test]
    fn graph6_roundtrip_all_families(
        which in 0u32..generators::SAMPLE_FAMILY_COUNT,
        n in 4u32..60,
        seed in 0u64..1000,
    ) {
        let g = generators::sample_family(which, n, seed);
        for g in [g.clone(), generators::shuffle_ids(&g, seed)] {
            let s = graph6::encode(&g);
            let h = graph6::decode(&s).unwrap();
            prop_assert_eq!(h.node_count(), g.node_count(), "family {}", which);
            prop_assert_eq!(h.edge_count(), g.edge_count(), "family {}", which);
            for e in g.edges() {
                prop_assert!(h.has_edge(e.u, e.v), "family {}", which);
            }
            prop_assert_eq!(graph6::encode(&h), s, "re-encode is stable");
            prop_assert_eq!(
                dpc_graph::canon::structural_hash(&h),
                dpc_graph::canon::structural_hash(&g),
                "structure survives the trip"
            );
        }
    }

    /// BFS tree distances are ≤ DFS tree distances, both span, subtree
    /// sizes are consistent.
    #[test]
    fn spanning_trees_consistent(n in 2u32..120, seed in 0u64..1000) {
        let g = generators::random_planar(n.max(3), 0.5, seed);
        let bfs = traversal::bfs_spanning_tree(&g, 0);
        let dfs = traversal::dfs_spanning_tree(&g, 0);
        let bfs_sizes = bfs.subtree_sizes();
        let dfs_sizes = dfs.subtree_sizes();
        prop_assert_eq!(bfs_sizes[0] as usize, g.node_count());
        prop_assert_eq!(dfs_sizes[0] as usize, g.node_count());
        for v in g.nodes() {
            prop_assert!(bfs.dist[v as usize] <= dfs.dist[v as usize],
                "BFS distances are shortest");
        }
        // n-1 tree edges each
        prop_assert_eq!(bfs.tree_edge_mask(&g).iter().filter(|&&b| b).count(),
            g.node_count() - 1);
    }

    /// Degeneracy is monotone under edge deletion and bounded by max degree.
    #[test]
    fn degeneracy_monotonicity(n in 3u32..80, seed in 0u64..500) {
        let g = generators::stacked_triangulation(n.max(3), seed);
        let d_full = degeneracy::degeneracy_order(&g).degeneracy;
        prop_assert!(d_full <= g.max_degree());
        prop_assert!(d_full <= 5, "planar");
        // remove half the cotree edges: degeneracy cannot increase
        let tree = traversal::bfs_spanning_tree(&g, 0);
        let mask = tree.tree_edge_mask(&g);
        let mut keep = true;
        let sub = g.edge_subgraph(|e, _| {
            mask[e as usize] || {
                keep = !keep;
                keep
            }
        });
        let d_sub = degeneracy::degeneracy_order(&sub).degeneracy;
        prop_assert!(d_sub <= d_full);
    }

    /// The bandwidth certificate is sound: whenever it certifies
    /// K4-minor-freeness, the exact series-parallel test agrees.
    #[test]
    fn stretch_certificate_sound(n in 4u32..60, seed in 0u64..500) {
        // build a random graph with stretch <= 2 by connecting only
        // nearby nodes in a layout
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = dpc_graph::GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(v - 1, v).unwrap();
        }
        for v in 2..n {
            if rng.gen_bool(0.5) {
                b.add_edge(v - 2, v).unwrap();
            }
        }
        let g = b.build();
        let layout: Vec<u32> = (0..n).collect();
        if minors::excludes_clique_minor_by_stretch(&g, 4, &layout) {
            prop_assert!(!minors::has_k4_minor(&g), "certificate must be sound");
        }
    }

    /// Subdivision preserves K4-minor status in both directions.
    #[test]
    fn subdivision_invariance(n in 4u32..30, seed in 0u64..200, extra in 1u32..3) {
        let g = generators::gnm_connected(n, (2 * n).min(n * (n - 1) / 2), seed);
        let sub = generators::subdivision_of(&g, extra);
        prop_assert_eq!(minors::has_k4_minor(&g), minors::has_k4_minor(&sub));
    }

    /// Components partition the nodes and respect edges.
    #[test]
    fn components_partition(n in 2u32..60, seed in 0u64..200) {
        let a = generators::random_tree(n, seed);
        let b = generators::cycle((n % 17).max(3));
        let g = a.disjoint_union(&b);
        let comps = traversal::components(&g);
        prop_assert_eq!(comps.count, 2);
        for e in g.edges() {
            prop_assert_eq!(comps.comp[e.u as usize], comps.comp[e.v as usize]);
        }
    }

    /// Biconnected components: bridges are singleton components; edges in
    /// a common cycle share a component.
    #[test]
    fn biconnectivity_invariants(n in 3u32..80, seed in 0u64..500) {
        let g = generators::random_planar(n.max(3), 0.4, seed);
        let bc = dpc_graph::biconnectivity::biconnectivity(&g);
        // every bridge forms its own component
        for &e in &bc.bridges {
            let c = bc.component[e as usize];
            let same = bc.component.iter().filter(|&&x| x == c).count();
            prop_assert_eq!(same, 1, "a bridge is alone in its component");
        }
        // the number of components is between 1 and m
        prop_assert!(bc.component_count as usize <= g.edge_count());
    }

    /// Generator contracts: node/edge counts and connectivity.
    #[test]
    fn generator_contracts(n in 3u32..100, seed in 0u64..500) {
        let tri = generators::stacked_triangulation(n.max(3), seed);
        prop_assert_eq!(tri.edge_count(), 3 * tri.node_count() - 6);
        prop_assert!(tri.is_connected());
        let outer = generators::random_maximal_outerplanar(n.max(3), seed);
        prop_assert_eq!(outer.edge_count(), 2 * outer.node_count() - 3,
            "maximal outerplanar has 2n-3 edges");
        let sp = generators::random_series_parallel(n.max(2), seed);
        prop_assert!(!minors::has_k4_minor(&sp), "series-parallel is K4-free");
    }
}
