//! # dpc — Compact Distributed Certification of Planar Graphs
//!
//! Facade crate for the reproduction of *Compact Distributed Certification
//! of Planar Graphs* (Feuilloley, Fraigniaud, Montealegre, Rapaport,
//! Rémila, Todinca — PODC 2020, arXiv:2005.05863).
//!
//! The workspace implements, from scratch:
//!
//! * a graph substrate ([`graph`]) with generators, traversals, degeneracy
//!   orderings and minor machinery;
//! * a planarity library ([`planar`]) — left-right planarity test with
//!   combinatorial-embedding extraction, Kuratowski extraction, and the
//!   paper's T-embedding pipeline (`G_{T,f}`, Lemmas 3–4);
//! * a synchronous distributed-network simulator ([`runtime`]) with
//!   CONGEST message accounting;
//! * the proof-labeling-scheme framework and the paper's schemes
//!   ([`core`]) — most importantly the `O(log n)`-bit 1-round PLS for
//!   planarity (Theorem 1);
//! * the lower-bound constructions of Section 4 ([`lowerbounds`]);
//! * distributed interactive proofs and a dMAM baseline ([`interactive`]);
//! * the long-running certification service ([`service`]) — binary wire
//!   protocol, sharded content-addressed certificate cache, batched
//!   worker pool (`dpc serve` / `dpc query` / `dpc bench-serve`).
//!
//! # Quickstart
//!
//! ```
//! use dpc::prelude::*;
//!
//! // A planar network: the prover certifies planarity, every node accepts.
//! let g = dpc::graph::generators::grid(6, 8);
//! let scheme = PlanarityScheme::new();
//! let outcome = run_pls(&scheme, &g).expect("prover succeeds on planar input");
//! assert!(outcome.all_accept());
//! assert_eq!(outcome.rounds, 1);
//!
//! // A non-planar network: no prover can fool the verifier; in particular
//! // the honest prover refuses (there is no valid certificate assignment).
//! let bad = dpc::graph::generators::k5_subdivision(3);
//! assert!(scheme.prove(&bad).is_err());
//! ```

pub use dpc_core as core;
pub use dpc_graph as graph;
pub use dpc_interactive as interactive;
pub use dpc_lowerbounds as lowerbounds;
pub use dpc_planar as planar;
pub use dpc_runtime as runtime;
pub use dpc_service as service;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use dpc_core::batch::{BatchReport, BatchRunner, BatchSummary};
    pub use dpc_core::harness::{run_pls, Outcome};
    pub use dpc_core::scheme::{Assignment, ProofLabelingScheme, ProveError};
    pub use dpc_core::schemes::non_planarity::NonPlanarityScheme;
    pub use dpc_core::schemes::path_outerplanar::PathOuterplanarScheme;
    pub use dpc_core::schemes::planarity::PlanarityScheme;
    pub use dpc_graph::{Graph, GraphBuilder};
    pub use dpc_planar::lr::{planarity, Planarity};
}
