//! Overlay-network audit: the paper's motivating scenario.
//!
//! Planar-specific distributed algorithms (MDS approximation, MST/min-cut
//! shortcuts, ...) silently misbehave on non-planar inputs. An overlay
//! that is *supposed* to stay planar can run the Theorem 1 scheme as a
//! cheap self-check: certificates are computed once in a maintenance
//! phase; afterwards a single communication round re-validates the
//! topology, and any topology drift (a rogue shortcut edge) is caught by
//! at least one node, which can raise an alarm.
//!
//! Run with: `cargo run --example overlay_audit`

use dpc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // The overlay: a random planar topology with 400 routers.
    let overlay = dpc::graph::generators::random_planar(400, 0.6, 1);
    println!(
        "overlay: {} routers, {} links, planar = {}",
        overlay.node_count(),
        overlay.edge_count(),
        planarity(&overlay).is_planar()
    );

    // Maintenance phase: compute and install certificates.
    let scheme = PlanarityScheme::new();
    let certs = scheme.prove(&overlay).expect("healthy overlay is planar");
    println!(
        "installed certificates: max {} bits per router",
        certs.max_bits()
    );

    // Routine audit: one round, everyone accepts.
    let audit = dpc::core::harness::run_with_assignment(&scheme, &overlay, &certs);
    assert!(audit.all_accept());
    println!("routine audit: all accept in {} round", audit.rounds);

    // Fault injection: a rogue long-range shortcut appears. The stale
    // certificates are still installed — does anyone notice?
    let n = overlay.node_count() as u32;
    let rogue = loop {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !overlay.has_edge(u, v) {
            break (u, v);
        }
    };
    let mut b = dpc::graph::GraphBuilder::new(n);
    for e in overlay.edges() {
        b.add_edge(e.u, e.v).unwrap();
    }
    b.add_edge(rogue.0, rogue.1).unwrap();
    let drifted = b.build().with_ids(overlay.ids().to_vec());
    println!(
        "\nfault injected: rogue link {} -- {} (planar = {})",
        rogue.0,
        rogue.1,
        planarity(&drifted).is_planar()
    );

    let audit = dpc::core::harness::run_with_assignment(&scheme, &drifted, &certs);
    let alarms: Vec<usize> = audit
        .verdicts
        .iter()
        .enumerate()
        .filter(|(_, &ok)| !ok)
        .map(|(v, _)| v)
        .collect();
    println!(
        "drift audit: {} router(s) raise an alarm: {:?}",
        alarms.len(),
        alarms
    );
    assert!(
        !alarms.is_empty(),
        "stale certificates cannot cover a topology change"
    );

    // Note: the drifted overlay may or may not still be planar; if it is
    // non-planar, soundness says NO certificate assignment exists at all.
    if !planarity(&drifted).is_planar() {
        assert!(scheme.prove(&drifted).is_err());
        // ... and the folklore non-planarity scheme can certify the defect
        // itself, pointing at a concrete Kuratowski witness:
        let np = NonPlanarityScheme::new();
        let out = run_pls(&np, &drifted).unwrap();
        assert!(out.all_accept());
        let w = dpc::planar::kuratowski::extract_kuratowski(&drifted).unwrap();
        println!(
            "defect certified: subdivided {:?} on {} links (non-planarity PLS, {} bits max)",
            w.kind,
            w.edges.len(),
            out.max_cert_bits
        );
    } else {
        // still planar: re-proving succeeds and the overlay re-validates
        let fresh = scheme.prove(&drifted).unwrap();
        let out = dpc::core::harness::run_with_assignment(&scheme, &drifted, &fresh);
        assert!(out.all_accept());
        println!("drifted overlay is still planar: re-certification succeeds");
    }
}
