//! Deep-copy reference executor — the "before" in zero-copy benchmarks.
//!
//! This is the seed implementation of the simulator loop, kept verbatim
//! in behavior: every delivered payload is a fresh byte buffer (one full
//! copy per incident edge per round) and every node gets a freshly
//! allocated inbox vector. [`crate::sim::run_protocol_states`] must
//! produce bit-identical reports and states; the `verifier` criterion
//! bench and the runtime equivalence tests hold the two implementations
//! against each other.

use crate::sim::{NodeCtx, Payload, Protocol, RunReport, Step};
use dpc_graph::{Graph, NodeId};

/// Like [`crate::sim::run_protocol`], but deep-copying every delivered
/// payload. Only useful as a performance baseline.
pub fn run_protocol_deepcopy<P: Protocol>(protocol: &P, g: &Graph, max_rounds: usize) -> RunReport {
    run_protocol_states_deepcopy(protocol, g, max_rounds).0
}

/// Like [`crate::sim::run_protocol_states`], but deep-copying every
/// delivered payload and allocating a fresh inbox per node per round.
pub fn run_protocol_states_deepcopy<P: Protocol>(
    protocol: &P,
    g: &Graph,
    max_rounds: usize,
) -> (RunReport, Vec<P::State>) {
    let n = g.node_count();
    let ctxs: Vec<NodeCtx> = (0..n as u32)
        .map(|v| NodeCtx {
            node: v,
            id: g.id_of(v),
            neighbor_ids: g.neighbors(v).map(|w| g.id_of(w)).collect(),
        })
        .collect();
    let mut states: Vec<P::State> = ctxs.iter().map(|c| protocol.init(c)).collect();
    let mut verdicts: Vec<Option<bool>> = vec![None; n];
    let mut max_bits = 0usize;
    let mut total_bits = 0u64;
    let mut round = 0usize;
    while round < max_rounds && verdicts.iter().any(|v| v.is_none()) {
        let outgoing: Vec<Payload> = (0..n)
            .map(|v| {
                if verdicts[v].is_none() {
                    protocol.message(&states[v], round)
                } else {
                    Payload::empty()
                }
            })
            .collect();
        for (v, p) in outgoing.iter().enumerate() {
            max_bits = max_bits.max(p.bit_len);
            total_bits += p.bit_len as u64 * g.degree(v as NodeId) as u64;
        }
        for v in 0..n {
            if verdicts[v].is_some() {
                continue;
            }
            let inbox: Vec<Payload> = g
                .neighbors(v as NodeId)
                .map(|w| {
                    let p = &outgoing[w as usize];
                    // the deliberate per-edge byte copy
                    Payload::from_bytes(p.to_vec(), p.bit_len)
                })
                .collect();
            if let Step::Output(b) = protocol.receive(&mut states[v], &ctxs[v], &inbox, round) {
                verdicts[v] = Some(b);
            }
        }
        round += 1;
    }
    (
        RunReport {
            verdicts,
            rounds: round,
            max_message_bits: max_bits,
            total_message_bits: total_bits,
        },
        states,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use crate::sim::run_protocol;
    use dpc_graph::generators;

    /// Echo protocol: broadcast the id, accept iff the inbox hashes to
    /// the same value two rounds in a row (exercises multi-round state).
    struct IdSum;

    impl Protocol for IdSum {
        type State = (u64, usize);

        fn init(&self, ctx: &NodeCtx) -> (u64, usize) {
            (ctx.id, 0)
        }

        fn message(&self, state: &(u64, usize), _round: usize) -> Payload {
            let mut w = BitWriter::new();
            w.write_varint(state.0);
            Payload::from_writer(w)
        }

        fn receive(
            &self,
            state: &mut (u64, usize),
            _ctx: &NodeCtx,
            inbox: &[Payload],
            round: usize,
        ) -> Step {
            let sum: u64 = inbox
                .iter()
                .map(|p| p.reader().read_varint().unwrap())
                .fold(0u64, |a, b| a.wrapping_add(b));
            state.0 = state.0.wrapping_add(sum);
            state.1 += 1;
            if round >= 2 {
                Step::Output(state.0.is_multiple_of(2) || state.1 > 0)
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn deepcopy_and_zero_copy_agree_exactly() {
        for g in [
            generators::grid(7, 9),
            generators::cycle(40),
            generators::star(16),
            generators::stacked_triangulation(60, 4),
        ] {
            let (fast, fast_states) = crate::sim::run_protocol_states(&IdSum, &g, 5);
            let (slow, slow_states) = run_protocol_states_deepcopy(&IdSum, &g, 5);
            assert_eq!(fast.verdicts, slow.verdicts);
            assert_eq!(fast.rounds, slow.rounds);
            assert_eq!(fast.max_message_bits, slow.max_message_bits);
            assert_eq!(fast.total_message_bits, slow.total_message_bits);
            assert_eq!(fast_states, slow_states);
        }
    }

    #[test]
    fn deepcopy_report_matches_fast_path_on_single_round() {
        let g = generators::grid(5, 5);
        let fast = run_protocol(&IdSum, &g, 1);
        let slow = run_protocol_deepcopy(&IdSum, &g, 1);
        assert_eq!(fast.total_message_bits, slow.total_message_bits);
        assert_eq!(fast.max_message_bits, slow.max_message_bits);
    }
}
