//! Experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! The paper is a theory paper with no measured evaluation, so the
//! "tables and figures" reproduced here are (a) the theorems turned into
//! measurements (certificate sizes, rounds, completeness/soundness) and
//! (b) the paper's constructions (Figures 5–10) built and validated.
//! Run `cargo run -p dpc-bench --release --bin experiments -- all`.

pub mod experiments;
pub mod families;
pub mod table;
