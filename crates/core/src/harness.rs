//! Runs proof-labeling schemes through the CONGEST simulator.
//!
//! The verification phase of a PLS is exactly one synchronous round in
//! which every node broadcasts its certificate; the harness wires a
//! [`ProofLabelingScheme`] into the simulator's [`Protocol`] interface so
//! every verification in this workspace goes through the same measured
//! execution path (rounds, message bits).

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use dpc_graph::Graph;
use dpc_runtime::{run_protocol, NodeCtx, Payload, Protocol, Step};

/// Outcome of running a scheme on a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Per-node verdicts.
    pub verdicts: Vec<bool>,
    /// Rounds of communication used (always 1 for a PLS).
    pub rounds: usize,
    /// Largest message (= certificate) in bits.
    pub max_message_bits: usize,
    /// Total bits sent over all edges and rounds (CONGEST accounting,
    /// straight from the simulator).
    pub total_message_bits: u64,
    /// Largest certificate in bits (same as the message for a PLS).
    pub max_cert_bits: usize,
    /// Total bits across all certificates.
    pub total_cert_bits: usize,
    /// Average certificate size in bits.
    pub avg_cert_bits: f64,
}

impl Outcome {
    /// True iff every node accepted.
    pub fn all_accept(&self) -> bool {
        self.verdicts.iter().all(|&b| b)
    }

    /// Number of rejecting nodes.
    pub fn reject_count(&self) -> usize {
        self.verdicts.iter().filter(|&&b| !b).count()
    }
}

struct PlsProtocol<'a, S> {
    scheme: &'a S,
    assignment: &'a Assignment,
}

struct PlsState {
    cert: Payload,
    verdict: Option<bool>,
}

impl<'a, S: ProofLabelingScheme> Protocol for PlsProtocol<'a, S> {
    type State = PlsState;

    fn init(&self, ctx: &NodeCtx) -> PlsState {
        PlsState {
            cert: self.assignment.certs[ctx.node as usize].clone(),
            verdict: None,
        }
    }

    fn message(&self, state: &PlsState, _round: usize) -> Payload {
        state.cert.clone()
    }

    fn receive(
        &self,
        state: &mut PlsState,
        ctx: &NodeCtx,
        inbox: &[Payload],
        _round: usize,
    ) -> Step {
        let v = self.scheme.verify(ctx, &state.cert, inbox);
        state.verdict = Some(v);
        Step::Output(v)
    }
}

/// Runs the honest prover and then the distributed verifier.
///
/// Returns `Err` when the prover declines (instance outside the class):
/// by soundness this is the *expected* result on no-instances.
pub fn run_pls<S: ProofLabelingScheme>(scheme: &S, g: &Graph) -> Result<Outcome, ProveError> {
    let assignment = scheme.prove(g)?;
    Ok(run_with_assignment(scheme, g, &assignment))
}

/// Runs the distributed verifier under an arbitrary (possibly forged)
/// certificate assignment — the soundness experiments live here.
pub fn run_with_assignment<S: ProofLabelingScheme>(
    scheme: &S,
    g: &Graph,
    assignment: &Assignment,
) -> Outcome {
    assert_eq!(assignment.certs.len(), g.node_count());
    let proto = PlsProtocol { scheme, assignment };
    let report = run_protocol(&proto, g, 1);
    outcome_from(report, assignment)
}

/// Like [`run_with_assignment`], but through the deep-copy reference
/// executor ([`dpc_runtime::baseline`]): one byte copy per certificate
/// per incident edge. Exists so benches can measure what the zero-copy
/// delivery path saves; results are identical.
pub fn run_with_assignment_deepcopy<S: ProofLabelingScheme>(
    scheme: &S,
    g: &Graph,
    assignment: &Assignment,
) -> Outcome {
    assert_eq!(assignment.certs.len(), g.node_count());
    let proto = PlsProtocol { scheme, assignment };
    let report = dpc_runtime::baseline::run_protocol_deepcopy(&proto, g, 1);
    outcome_from(report, assignment)
}

fn outcome_from(report: dpc_runtime::RunReport, assignment: &Assignment) -> Outcome {
    Outcome {
        verdicts: report.verdicts.iter().map(|v| v.unwrap_or(false)).collect(),
        rounds: report.rounds,
        max_message_bits: report.max_message_bits,
        total_message_bits: report.total_message_bits,
        max_cert_bits: assignment.max_bits(),
        total_cert_bits: assignment.total_bits(),
        avg_cert_bits: assignment.avg_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;
    use dpc_runtime::BitWriter;

    /// Toy scheme: class = all graphs; certificate = the node's degree;
    /// verify checks the certificate matches the observed degree.
    struct DegreeScheme;

    impl ProofLabelingScheme for DegreeScheme {
        fn name(&self) -> &'static str {
            "degree"
        }

        fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
            let certs = g
                .nodes()
                .map(|v| {
                    let mut w = BitWriter::new();
                    w.write_varint(g.degree(v) as u64);
                    Payload::from_writer(w)
                })
                .collect();
            Ok(Assignment { certs })
        }

        fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
            let mut r = own.reader();
            match r.read_varint() {
                Ok(d) => d as usize == ctx.degree() && neighbors.len() == ctx.degree(),
                Err(_) => false,
            }
        }
    }

    #[test]
    fn honest_run_accepts_in_one_round() {
        let g = generators::grid(3, 3);
        let out = run_pls(&DegreeScheme, &g).unwrap();
        assert!(out.all_accept());
        assert_eq!(out.rounds, 1);
        assert!(out.max_cert_bits >= 8);
        assert_eq!(out.max_cert_bits, out.max_message_bits);
    }

    #[test]
    fn deepcopy_harness_agrees_with_zero_copy() {
        let g = generators::grid(4, 5);
        let a = DegreeScheme.prove(&g).unwrap();
        let fast = run_with_assignment(&DegreeScheme, &g, &a);
        let slow = run_with_assignment_deepcopy(&DegreeScheme, &g, &a);
        assert_eq!(fast, slow);
    }

    #[test]
    fn forged_assignment_rejected_somewhere() {
        let g = generators::grid(3, 3);
        let mut a = DegreeScheme.prove(&g).unwrap();
        // corrupt node 4's certificate (degree lie)
        let mut w = BitWriter::new();
        w.write_varint(99);
        a.certs[4] = Payload::from_writer(w);
        let out = run_with_assignment(&DegreeScheme, &g, &a);
        assert!(!out.all_accept());
        assert_eq!(out.reject_count(), 1);
    }
}
