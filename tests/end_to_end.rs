//! Cross-crate integration: the full Theorem 1 pipeline, from graph
//! generation through embedding, certificate construction, and 1-round
//! distributed verification, plus soundness under the attack battery.

use dpc::core::adversary::{forge, soundness_report, Attack};
use dpc::core::harness::{run_pls, run_with_assignment};
use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::generators;
use dpc::prelude::*;

#[test]
fn planar_families_accept_with_small_certs() {
    let scheme = PlanarityScheme::new();
    let graphs = vec![
        ("tree", generators::random_tree(300, 1)),
        ("cycle", generators::cycle(300)),
        ("grid", generators::grid(17, 18)),
        ("triangulation", generators::stacked_triangulation(300, 2)),
        ("random-planar", generators::random_planar(300, 0.5, 3)),
        (
            "outerplanar",
            generators::random_maximal_outerplanar(300, 4),
        ),
        (
            "series-parallel",
            generators::random_series_parallel(300, 5),
        ),
        ("caterpillar", generators::caterpillar(100, 200, 6)),
        ("wheel", generators::wheel(300)),
        ("star", generators::star(300)),
    ];
    for (name, g) in graphs {
        let out = run_pls(&scheme, &g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.all_accept(), "{name}: all nodes must accept");
        assert_eq!(out.rounds, 1, "{name}: one round");
        assert!(
            out.max_cert_bits <= 1200,
            "{name}: certificates stay logarithmic, got {}",
            out.max_cert_bits
        );
    }
}

#[test]
fn nonplanar_families_fully_resist_attacks() {
    let scheme = PlanarityScheme::new();
    let graphs = vec![
        ("K5", generators::complete(5)),
        ("K6", generators::complete(6)),
        ("K33", generators::complete_bipartite(3, 3)),
        ("K5-subdiv", generators::k5_subdivision(3)),
        ("K33-subdiv", generators::k33_subdivision(2)),
        ("planted-K5", generators::planted_kuratowski(40, true, 1, 7)),
        (
            "planted-K33",
            generators::planted_kuratowski(40, false, 2, 8),
        ),
        ("Q4", generators::hypercube(4)),
        ("dense", generators::gnm_connected(30, 100, 9)),
    ];
    for (name, g) in graphs {
        assert!(
            scheme.prove(&g).is_err(),
            "{name}: honest prover must decline"
        );
        for row in soundness_report(&scheme, &g, 42) {
            if let Some(r) = row.rejects {
                assert!(r >= 1, "{name}: attack {} fooled everyone", row.attack);
            }
        }
    }
}

#[test]
fn certificates_survive_id_reassignment() {
    // the scheme must work for any identifier assignment from a
    // polynomial range (the model of §2)
    let scheme = PlanarityScheme::new();
    for seed in 0..6u64 {
        let g = generators::shuffle_ids(&generators::stacked_triangulation(120, seed), seed);
        let out = run_pls(&scheme, &g).unwrap();
        assert!(out.all_accept(), "seed {seed}");
    }
}

#[test]
fn certs_from_isomorphic_but_differently_labeled_graph_fail() {
    // replaying certificates across id assignments must fail: the ids are
    // baked into the certificates
    let scheme = PlanarityScheme::new();
    let g1 = generators::stacked_triangulation(60, 3);
    let g2 = generators::shuffle_ids(&g1, 99);
    let a = scheme.prove(&g1).unwrap();
    let out = run_with_assignment(&scheme, &g2, &a);
    assert!(!out.all_accept());
}

#[test]
fn attack_battery_is_applicable_on_planted_instances() {
    // the replay attacks require a provable planarized subgraph; make
    // sure they actually engage (regression against silently-skipped
    // soundness tests)
    let g = generators::planted_kuratowski(25, true, 1, 5);
    let scheme = PlanarityScheme::new();
    for attack in [
        Attack::ReplayPlanarized,
        Attack::ReplayBitFlip { flips: 3 },
        Attack::ReplayShuffle,
    ] {
        assert!(
            forge(&scheme, &g, attack, 1).is_some(),
            "{:?} must be applicable",
            attack
        );
    }
}

#[test]
fn non_planarity_and_planarity_schemes_partition_graphs() {
    // exactly one of the two honest provers succeeds on any connected graph
    let np = NonPlanarityScheme::new();
    let pl = PlanarityScheme::new();
    let samples = vec![
        generators::grid(6, 6),
        generators::complete(5),
        generators::planted_kuratowski(20, false, 1, 1),
        generators::stacked_triangulation(40, 2),
        generators::hypercube(4),
        generators::random_tree(50, 3),
    ];
    for g in samples {
        let planar_ok = pl.prove(&g).is_ok();
        let nonplanar_ok = np.prove(&g).is_ok();
        assert_ne!(planar_ok, nonplanar_ok, "exactly one scheme applies");
        if planar_ok {
            assert!(run_pls(&pl, &g).unwrap().all_accept());
        } else {
            assert!(run_pls(&np, &g).unwrap().all_accept());
        }
    }
}

#[test]
fn universal_baseline_agrees_with_main_scheme() {
    let uni = dpc::core::schemes::universal::UniversalScheme::new();
    let pl = PlanarityScheme::new();
    for seed in 0..4u64 {
        let g = generators::random_planar(80, 0.4, seed);
        assert_eq!(uni.prove(&g).is_ok(), pl.prove(&g).is_ok());
        let out = run_pls(&uni, &g).unwrap();
        assert!(out.all_accept());
        // and the universal certificates are much larger
        let ub = uni.prove(&g).unwrap().max_bits();
        let pb = pl.prove(&g).unwrap().max_bits();
        assert!(ub > 3 * pb, "universal {ub} vs PLS {pb}");
    }
}
