//! A tour of the paper's Section 4 lower-bound machinery: why Θ(log n)
//! is optimal for planarity certification.
//!
//! Run with: `cargo run --example lower_bound_tour`

use dpc::lowerbounds::blocks::{
    certify_cycle_has_kk, certify_path_kfree, cycle_of_blocks, path_of_blocks,
};
use dpc::lowerbounds::counting::{accepts_path, crossover_p, forge_cycle, ModCounterScheme};
use dpc::lowerbounds::kpq::{certify_j_has_kqq, default_ids, instance_iab, instance_j, KpqParams};

fn main() {
    // --- Lemma 5: Forb(K_k) needs Ω(log n) bits -------------------------
    println!("Lemma 5: paths of blocks (legal) vs cycles of blocks (illegal)");
    let k = 4;
    let p = 12;
    let perm: Vec<usize> = (1..=p).collect();
    let path = path_of_blocks(k, &perm);
    let cycle = cycle_of_blocks(k, &perm);
    println!(
        "  path of {p} blocks: {} nodes, K{k}-minor-free = {}",
        path.graph.node_count(),
        certify_path_kfree(&path)
    );
    println!(
        "  cycle of {p} blocks: {} nodes, contains K{k} minor = {}",
        cycle.graph.node_count(),
        certify_cycle_has_kk(&cycle)
    );

    // The counting argument: too few labeled-block sets for p! paths.
    println!("\ncounting: smallest p with p! > 2^{{(k-1)·g·p}}");
    for g in 1..=4u32 {
        println!("  g = {g} bits  ->  p* = {}", crossover_p(k as u32, g));
    }

    // A concrete soundness failure for a natural g-bit scheme: the
    // mod-2^g chain counter accepts every path of blocks...
    let g = 3;
    let scheme = ModCounterScheme::new(k, g);
    assert!(accepts_path(&scheme, &perm));
    println!("\nmod-counter scheme with g = {g} bits accepts all paths of blocks");
    // ...and also a cycle of 2^g blocks, which is illegal:
    let forgery = forge_cycle(&scheme);
    println!(
        "  forged cycle of {} blocks: every node accepts = {}, contains K{k} = {}",
        1 << g,
        forgery.fully_accepted,
        certify_cycle_has_kk(&forgery.cycle)
    );
    assert!(forgery.fully_accepted, "the lower bound in action");

    // --- Lemma 6: Forb(K_{p,q}) needs Ω(log n) bits ----------------------
    println!("\nLemma 6: outerplanar instances I_ab glue into J ⊇ K_qq minor");
    let q = 3;
    let params = KpqParams::new(8 * q, q);
    let iab = instance_iab(
        params,
        &default_ids(params, 0, false),
        &default_ids(params, 0, true),
    );
    println!(
        "  I_ab: {} nodes, outerplanar = {}",
        iab.node_count(),
        dpc::planar::embedding::is_outerplanar(&iab)
    );
    let j = instance_j(params);
    println!(
        "  J: {} nodes ({}x glued), K_{{{q},{q}}} minor witnessed = {}",
        j.graph.node_count(),
        q,
        certify_j_has_kqq(&j, q)
    );

    // --- The conclusion ---------------------------------------------------
    println!("\nplanar = Forb({{K5, K3,3}}) (Wagner), so certification needs Ω(log n) bits;");
    println!("Theorem 1's scheme (see `quickstart`) matches it: Θ(log n) is tight.");
}
