//! Distributed certificate pre-processing.
//!
//! The paper (§1.1) notes that "in many frameworks ... the certificates
//! can be computed in a distributed manner by the network itself during
//! a pre-processing phase". This module demonstrates it for the
//! spanning-tree component: a self-contained multi-round protocol that
//! elects the maximum-identifier node as root (flooding), builds a BFS
//! tree toward it, converge-casts subtree sizes, and floods the total
//! `n` back down — producing exactly the [`TreeCert`]s that the schemes
//! consume, with no centralized prover involved.

use crate::schemes::tree_base::TreeCert;
use dpc_graph::Graph;
use dpc_runtime::bits::BitWriter;
use dpc_runtime::{run_protocol_states, NodeCtx, Payload, Protocol, Step};

/// Per-node state of the pre-processing protocol; converges to the
/// node's [`TreeCert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeBuildState {
    /// Best (maximum) root identifier seen so far.
    pub root_id: u64,
    /// Hop distance to that root.
    pub dist: u64,
    /// Parent identifier (self at the root).
    pub parent_id: u64,
    /// Current subtree-size estimate.
    pub subtree: u64,
    /// Current estimate of `n` (flooded down from the root).
    pub n: u64,
    own_id: u64,
    rounds_left: usize,
}

impl TreeBuildState {
    /// The certificate this state has converged to.
    pub fn to_cert(&self) -> TreeCert {
        TreeCert {
            root_id: self.root_id,
            n: self.n,
            dist: self.dist,
            parent_id: self.parent_id,
            subtree: self.subtree,
        }
    }
}

/// The pre-processing protocol: max-id leader election + BFS +
/// converge-cast, stabilizing within `3·n` rounds.
#[derive(Debug, Clone, Copy)]
pub struct TreeBuildProtocol {
    /// Number of rounds to run (must exceed `2·diameter + depth`; the
    /// runner uses `3n + 5`).
    pub rounds: usize,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    root_id: u64,
    dist: u64,
    parent_id: u64,
    subtree: u64,
    n: u64,
}

fn encode(m: &Msg) -> Payload {
    let mut w = BitWriter::new();
    for x in [m.root_id, m.dist, m.parent_id, m.subtree, m.n] {
        w.write_varint(x);
    }
    Payload::from_writer(w)
}

fn decode(p: &Payload) -> Option<Msg> {
    let mut r = p.reader();
    Some(Msg {
        root_id: r.read_varint().ok()?,
        dist: r.read_varint().ok()?,
        parent_id: r.read_varint().ok()?,
        subtree: r.read_varint().ok()?,
        n: r.read_varint().ok()?,
    })
}

impl Protocol for TreeBuildProtocol {
    type State = TreeBuildState;

    fn init(&self, ctx: &NodeCtx) -> TreeBuildState {
        TreeBuildState {
            root_id: ctx.id,
            dist: 0,
            parent_id: ctx.id,
            subtree: 1,
            n: 1,
            own_id: ctx.id,
            rounds_left: self.rounds,
        }
    }

    fn message(&self, st: &TreeBuildState, _round: usize) -> Payload {
        encode(&Msg {
            root_id: st.root_id,
            dist: st.dist,
            parent_id: st.parent_id,
            subtree: st.subtree,
            n: st.n,
        })
    }

    fn receive(
        &self,
        st: &mut TreeBuildState,
        ctx: &NodeCtx,
        inbox: &[Payload],
        _round: usize,
    ) -> Step {
        let msgs: Vec<Msg> = inbox.iter().filter_map(decode).collect();
        if msgs.len() != inbox.len() {
            return Step::Output(false);
        }
        // adopt the largest root id anywhere in sight
        let best = msgs
            .iter()
            .map(|m| m.root_id)
            .chain(std::iter::once(st.root_id))
            .max()
            .unwrap();
        st.root_id = best;
        if st.own_id == best {
            st.dist = 0;
            st.parent_id = st.own_id;
        } else {
            // BFS step toward the root: smallest neighbor distance + 1,
            // ties broken by smallest neighbor id (determinism)
            let mut cand: Option<(u64, u64)> = None; // (dist, id)
            for (p, m) in msgs.iter().enumerate() {
                if m.root_id == best {
                    let key = (m.dist, ctx.neighbor_ids[p]);
                    if cand.is_none_or(|c| key < c) {
                        cand = Some(key);
                    }
                }
            }
            match cand {
                Some((d, id)) => {
                    st.dist = d + 1;
                    st.parent_id = id;
                }
                None => {
                    // no neighbor knows the best root yet: stay pending
                    st.dist = u32::MAX as u64;
                    st.parent_id = st.own_id;
                }
            }
        }
        // converge-cast subtree sizes: children = neighbors pointing here
        st.subtree = 1;
        for m in &msgs {
            if m.root_id == best && m.parent_id == st.own_id && m.dist == st.dist + 1 {
                st.subtree += m.subtree;
            }
        }
        // flood n down from the root
        st.n = if st.own_id == best {
            st.subtree
        } else {
            msgs.iter()
                .enumerate()
                .find(|(p, m)| m.root_id == best && ctx.neighbor_ids[*p] == st.parent_id)
                .map(|(_, m)| m.n)
                .unwrap_or(st.n)
        };
        st.rounds_left -= 1;
        if st.rounds_left == 0 {
            Step::Output(true)
        } else {
            Step::Continue
        }
    }
}

/// Runs the pre-processing phase and returns the per-node tree
/// certificates, plus the number of rounds used.
///
/// # Panics
///
/// Panics if the graph is not connected (the protocol would compute
/// per-component trees that never agree on `n`).
pub fn distributed_tree_certs(g: &Graph) -> (Vec<TreeCert>, usize) {
    assert!(
        g.is_connected(),
        "pre-processing assumes a connected network"
    );
    let rounds = 3 * g.node_count() + 5;
    let proto = TreeBuildProtocol { rounds };
    let (report, states) = run_protocol_states(&proto, g, rounds + 1);
    (states.iter().map(|s| s.to_cert()).collect(), report.rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_with_assignment;
    use crate::scheme::Assignment;
    use crate::schemes::spanning_tree::SpanningTreeScheme;
    use dpc_graph::generators;

    fn certs_verify(g: &Graph, certs: &[TreeCert]) -> bool {
        let assignment = Assignment {
            certs: certs
                .iter()
                .map(|c| {
                    let mut w = BitWriter::new();
                    c.encode(&mut w);
                    Payload::from_writer(w)
                })
                .collect(),
        };
        run_with_assignment(&SpanningTreeScheme::new(), g, &assignment).all_accept()
    }

    #[test]
    fn distributed_certs_pass_the_tree_verifier() {
        for g in [
            generators::path(15),
            generators::cycle(20),
            generators::grid(5, 6),
            generators::stacked_triangulation(40, 3),
            generators::random_tree(35, 4),
        ] {
            let (certs, _) = distributed_tree_certs(&g);
            assert!(certs_verify(&g, &certs), "{g:?}");
        }
    }

    #[test]
    fn root_is_max_id_and_n_correct() {
        let g = generators::shuffle_ids(&generators::grid(4, 7), 9);
        let (certs, _) = distributed_tree_certs(&g);
        let max_id = g.ids().iter().copied().max().unwrap();
        for c in &certs {
            assert_eq!(c.root_id, max_id);
            assert_eq!(c.n, g.node_count() as u64);
        }
        // exactly one root, subtree = n there
        let roots: Vec<&TreeCert> = certs.iter().filter(|c| c.dist == 0).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].subtree, g.node_count() as u64);
    }

    #[test]
    fn distances_are_bfs_distances() {
        let g = generators::shuffle_ids(&generators::cycle(17), 5);
        let (certs, _) = distributed_tree_certs(&g);
        let max_id = g.ids().iter().copied().max().unwrap();
        let root = g.node_of_id(max_id).unwrap();
        let tree = dpc_graph::traversal::bfs_spanning_tree(&g, root);
        for v in g.nodes() {
            assert_eq!(
                certs[v as usize].dist, tree.dist[v as usize] as u64,
                "node {v}"
            );
        }
    }

    #[test]
    fn messages_stay_logarithmic() {
        let g = generators::stacked_triangulation(60, 2);
        let rounds = 3 * g.node_count() + 5;
        let proto = TreeBuildProtocol { rounds };
        let (report, _) = run_protocol_states(&proto, &g, rounds + 1);
        assert!(report.max_message_bits < 200, "{}", report.max_message_bits);
        assert_eq!(report.rounds, rounds);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let g = generators::path(3).disjoint_union(&generators::path(2));
        let _ = distributed_tree_certs(&g);
    }
}
