//! Exhaustive sweep: EVERY connected graph on 5 nodes (and a large
//! sample on 6 nodes) is pushed through the full stack — completeness,
//! soundness, and both certificate directions. Small-universe
//! exhaustiveness is the strongest cheap evidence that the verifier has
//! no blind spots.

use dpc::core::adversary::{forge, Attack};
use dpc::core::harness::{run_pls, run_with_assignment};
use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::{Graph, GraphBuilder};
use dpc::planar::lr::is_planar;
use dpc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graph_from_mask(n: u32, pairs: &[(u32, u32)], mask: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        if mask >> i & 1 == 1 {
            b.add_edge(u, v).unwrap();
        }
    }
    b.build()
}

fn all_pairs(n: u32) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((u, v));
        }
    }
    pairs
}

fn exercise(g: &Graph) {
    let scheme = PlanarityScheme::new();
    if is_planar(g) {
        let out = run_pls(&scheme, g).unwrap_or_else(|e| panic!("{g:?}: {e}"));
        assert!(out.all_accept(), "completeness violated on {g}");
        assert_eq!(out.rounds, 1);
    } else {
        assert!(scheme.prove(g).is_err(), "prover accepted non-planar {g}");
        // strongest attack: planarized replay
        if let Some(a) = forge(&scheme, g, Attack::ReplayPlanarized, 0) {
            let out = run_with_assignment(&scheme, g, &a);
            assert!(!out.all_accept(), "soundness violated on {g}");
        }
        // and the non-planarity scheme must certify it
        let out = run_pls(&NonPlanarityScheme::new(), g).unwrap();
        assert!(out.all_accept(), "non-planarity scheme failed on {g}");
    }
}

#[test]
fn every_connected_graph_on_5_nodes() {
    let pairs = all_pairs(5);
    let mut planar = 0;
    let mut nonplanar = 0;
    for mask in 0u32..(1 << pairs.len()) {
        let g = graph_from_mask(5, &pairs, mask);
        if !g.is_connected() {
            continue;
        }
        if is_planar(&g) {
            planar += 1;
        } else {
            nonplanar += 1;
        }
        exercise(&g);
    }
    // on 5 nodes only K5 itself is non-planar
    assert_eq!(nonplanar, 1, "exactly K5");
    assert!(planar > 700, "got {planar} connected planar graphs");
}

#[test]
fn sampled_connected_graphs_on_6_and_7_nodes() {
    let mut rng = StdRng::seed_from_u64(777);
    for n in [6u32, 7] {
        let pairs = all_pairs(n);
        let mut seen_nonplanar = 0;
        for _ in 0..800 {
            let mask: u32 = rng.gen_range(0..(1u32 << pairs.len()));
            let g = graph_from_mask(n, &pairs, mask);
            if !g.is_connected() {
                continue;
            }
            if !is_planar(&g) {
                seen_nonplanar += 1;
            }
            exercise(&g);
        }
        assert!(
            seen_nonplanar > 0,
            "the sample should include non-planar graphs"
        );
    }
}

#[test]
fn all_trees_on_up_to_7_nodes() {
    // enumerate labelled trees via Prüfer sequences: n^(n-2) trees
    for n in [3u32, 4, 5, 6, 7] {
        let count = (n as u64).pow(n - 2);
        let step = (count / 200).max(1); // cap the work per n
        let mut idx = 0u64;
        while idx < count {
            // decode Prüfer sequence idx
            let mut seq = Vec::with_capacity((n - 2) as usize);
            let mut x = idx;
            for _ in 0..n - 2 {
                seq.push((x % n as u64) as u32);
                x /= n as u64;
            }
            let g = tree_from_pruefer(n, &seq);
            let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
            assert!(out.all_accept(), "tree from Prüfer {seq:?}");
            idx += step;
        }
    }
}

fn tree_from_pruefer(n: u32, seq: &[u32]) -> Graph {
    let mut degree = vec![1u32; n as usize];
    for &s in seq {
        degree[s as usize] += 1;
    }
    let mut b = GraphBuilder::new(n);
    let mut leaves: std::collections::BTreeSet<u32> =
        (0..n).filter(|&v| degree[v as usize] == 1).collect();
    for &s in seq {
        let leaf = *leaves.iter().next().unwrap();
        leaves.remove(&leaf);
        b.add_edge(leaf, s).unwrap();
        degree[s as usize] -= 1;
        if degree[s as usize] == 1 {
            leaves.insert(s);
        }
    }
    let mut it = leaves.into_iter();
    let (a, c) = (it.next().unwrap(), it.next().unwrap());
    b.add_edge(a, c).unwrap();
    b.build()
}
