//! Quickstart: certify that a network is planar with O(log n)-bit
//! certificates (Theorem 1 of the paper).
//!
//! Run with: `cargo run --example quickstart`

use dpc::prelude::*;

fn main() {
    // Build a network: a 12x12 grid (planar).
    let g = dpc::graph::generators::grid(12, 12);
    println!(
        "network: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    // The prover assigns each node an O(log n)-bit certificate...
    let scheme = PlanarityScheme::new();
    let assignment = scheme.prove(&g).expect("grid is planar");
    println!(
        "certificates: max {} bits, avg {:.1} bits (log2 n = {:.1})",
        assignment.max_bits(),
        assignment.avg_bits(),
        (g.node_count() as f64).log2()
    );

    // ...and the distributed verifier runs ONE round of communication.
    let outcome = run_pls(&scheme, &g).unwrap();
    assert!(outcome.all_accept());
    println!(
        "verification: {} round(s), all {} nodes accept",
        outcome.rounds,
        outcome.verdicts.len()
    );

    // On a non-planar network there is nothing valid to hand out:
    let bad = dpc::graph::generators::k5_subdivision(4);
    match scheme.prove(&bad) {
        Err(e) => println!("non-planar network: prover declines ({e})"),
        Ok(_) => unreachable!("soundness would be broken"),
    }

    // And no forged certificates survive either — replay the strongest
    // natural attack (honest certificates of a planarized subgraph):
    let report = dpc::core::adversary::soundness_report(&scheme, &bad, 7);
    for row in report {
        println!(
            "attack {:>18}: {} rejecting node(s)",
            row.attack,
            row.rejects.map_or("n/a".into(), |r| r.to_string())
        );
    }
}
