//! End-to-end cluster test: three unmodified `dpc serve` nodes behind
//! a [`ClusterClient`] — rendezvous routing spreads mixed-scheme
//! traffic, a killed node fails over without losing a single request,
//! and the dead node's segment store merges into a survivor with
//! byte-identical certificate suffixes and deduplicated records.

use dpc_graph::generators;
use dpc_service::cluster::{graphs_by_owner, ClusterClient, Ring};
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::store::{CertStore, StoreRecord};
use dpc_service::wire::Response;
use dpc_service::{serve, SegmentConfig, SegmentStore, ServeConfig, ServerHandle};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dpc-cluster-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn ring_of(n: usize, base: &std::path::Path) -> Vec<ServerHandle> {
    (0..n)
        .map(|i| {
            let cfg = ServeConfig {
                store: Some(SegmentConfig::new(base.join(format!("node-{i}")))),
                ..ServeConfig::default()
            };
            serve("127.0.0.1:0", cfg).unwrap()
        })
        .collect()
}

/// Mixed-scheme workload: planar triangulations under planarity,
/// grids under bipartite, and one spanning-tree certify.
fn workload() -> Vec<(dpc_graph::Graph, SchemeId)> {
    let mut work = Vec::new();
    for seed in 0..8u64 {
        work.push((
            generators::stacked_triangulation(18 + seed as u32, seed),
            SchemeId::PLANARITY,
        ));
    }
    for side in 3..7u32 {
        work.push((generators::grid(side, side), SchemeId::BIPARTITE));
    }
    work.push((generators::grid(5, 4), SchemeId::SPANNING_TREE));
    work
}

#[test]
fn three_node_ring_survives_a_kill_and_merges_the_dead_store() {
    let base = scratch_dir("ring");
    let mut handles = ring_of(3, &base);
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    let ring = Ring::new(addrs.clone()).unwrap();
    let mut cc = ClusterClient::over(ring.clone());

    // ---- phase 1: mixed-scheme traffic over the full ring ----
    // the fixed workload plus one ring-selected graph per node, so
    // every node deterministically owns at least one key
    let mut work = workload();
    for bucket in graphs_by_owner(&ring, 1, 20) {
        for g in bucket {
            work.push((g, SchemeId::PLANARITY));
        }
    }
    for (g, scheme) in &work {
        let resp = cc.certify_scheme(g, false, *scheme).unwrap();
        assert!(
            matches!(resp, Response::Certified { cached: false, .. }),
            "fresh key must prove: {resp:?}"
        );
        // the repeat is a cache hit on the same owning node
        let again = cc.certify_scheme(g, false, *scheme).unwrap();
        assert!(
            matches!(again, Response::Certified { cached: true, .. }),
            "{again:?}"
        );
    }
    let routing = cc.stats().clone();
    assert_eq!(routing.requests, 2 * work.len() as u64);
    assert_eq!(routing.failovers, 0, "all nodes are up: {routing:?}");
    assert_eq!(
        routing.nodes_used(),
        3,
        "every node serves its selected key: {routing:?}"
    );
    // per-node server stats agree that traffic spread
    let (fleet, per_node) = cc.fleet_stats().unwrap();
    assert_eq!(fleet.certify, 2 * work.len() as u64);
    assert!(per_node.iter().all(|(_, r)| r.is_ok()));

    // ---- phase 2: kill the busiest node; every request still answers ----
    let victim = routing
        .per_node
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| n.routed)
        .map(|(i, _)| i)
        .unwrap();
    let victim_addr = addrs[victim].clone();
    let victim_dir = base.join(format!("node-{victim}"));
    handles.remove(victim).shutdown();

    let mut cc = ClusterClient::new(addrs.clone()).unwrap();
    for (g, scheme) in &work {
        let resp = cc.certify_scheme(g, false, *scheme).unwrap();
        assert!(
            matches!(resp, Response::Certified { .. }),
            "failover must answer: {resp:?}"
        );
    }
    let routing = cc.stats().clone();
    assert_eq!(routing.requests, work.len() as u64, "no request was lost");
    assert_eq!(routing.exhausted, 0);
    assert!(routing.failovers > 0, "the victim owned keys: {routing:?}");
    let victim_row = routing
        .per_node
        .iter()
        .find(|n| n.addr == victim_addr)
        .unwrap();
    assert_eq!(victim_row.routed, 0, "a dead node answers nothing");
    assert!(victim_row.failures > 0);

    // ---- phase 3: merge the dead node's store into a survivor ----
    for h in handles {
        h.shutdown(); // stores must be offline for dpc-store tools
    }
    let survivor_idx = (0..3).find(|&i| i != victim).unwrap();
    let survivor_dir = base.join(format!("node-{survivor_idx}"));
    let victim_store = SegmentStore::open(SegmentConfig::new(&victim_dir)).unwrap();
    let victim_records: Vec<StoreRecord> = victim_store.iter().map(|r| r.unwrap()).collect();
    assert!(
        !victim_records.is_empty(),
        "the busiest node persisted its certificates"
    );
    let survivor = SegmentStore::open(SegmentConfig::new(&survivor_dir)).unwrap();
    let before = survivor.len();
    let report = survivor.merge_from(&victim_store).unwrap();
    assert_eq!(report.scanned, victim_records.len() as u64);
    assert_eq!(report.source_errors, 0);
    assert_eq!(
        report.merged + report.duplicates,
        report.scanned,
        "every record lands exactly once: {report:?}"
    );
    assert_eq!(
        survivor.len(),
        before + report.merged,
        "dedup by content key: {report:?}"
    );
    // the rehomed certificates are byte-identical to what the victim
    // served: same keyed bytes, same pre-encoded wire suffix
    for record in &victim_records {
        let merged = survivor
            .get(record.key(), &record.keyed)
            .expect("merged record is retrievable");
        assert_eq!(merged.suffix, record.suffix, "byte-identical suffix");
        assert_eq!(merged, *record);
    }
    // the union verifies clean against the standard registry
    survivor.flush().unwrap();
    let verify = survivor.verify(&SchemeRegistry::standard());
    assert!(verify.problems.is_empty(), "{:?}", verify.problems);
    assert_eq!(verify.records, survivor.len());
    // merging the same source twice is a pure no-op
    let again = survivor.merge_from(&victim_store).unwrap();
    assert_eq!(again.merged, 0);
    assert_eq!(again.duplicates, report.scanned);
    assert_eq!(survivor.len(), before + report.merged);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn restarted_survivor_serves_the_merged_certificates_without_reproving() {
    // the payoff of merge: after rehoming, a single node answers the
    // whole ring's keys from its store — zero prover executions
    let base = scratch_dir("rehome");
    let handles = ring_of(2, &base);
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    let ring = Ring::new(addrs).unwrap();
    let mut cc = ClusterClient::over(ring.clone());
    // three ring-selected graphs per node: both stores fill, certainly
    let graphs: Vec<_> = graphs_by_owner(&ring, 3, 20)
        .into_iter()
        .flatten()
        .collect();
    for g in &graphs {
        assert!(matches!(
            cc.certify(g, false).unwrap(),
            Response::Certified { cached: false, .. }
        ));
    }
    assert_eq!(
        cc.stats().nodes_used(),
        2,
        "both nodes took traffic: {:?}",
        cc.stats()
    );
    for h in handles {
        h.shutdown();
    }
    // merge node-1 into node-0, then restart only node-0
    let src = SegmentStore::open(SegmentConfig::new(base.join("node-1"))).unwrap();
    let dst = SegmentStore::open(SegmentConfig::new(base.join("node-0"))).unwrap();
    dst.merge_from(&src).unwrap();
    dst.flush().unwrap();
    assert_eq!(dst.len(), graphs.len() as u64);
    drop((src, dst));
    let cfg = ServeConfig {
        store: Some(SegmentConfig::new(base.join("node-0"))),
        ..ServeConfig::default()
    };
    let survivor = serve("127.0.0.1:0", cfg).unwrap();
    let mut cc = ClusterClient::new([survivor.addr().to_string()]).unwrap();
    for g in &graphs {
        // every key — including those the dead node proved — is a hit
        assert!(matches!(
            cc.certify(g, false).unwrap(),
            Response::Certified { cached: true, .. }
        ));
    }
    assert_eq!(survivor.stats().proves, 0, "nothing was re-proved");
    survivor.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
