//! Every proof-labeling scheme in the workspace, run side by side on
//! fitting instances.
//!
//! Run with: `cargo run --example scheme_zoo`

use dpc::core::harness::run_pls;
use dpc::core::scheme::ProofLabelingScheme;
use dpc::core::schemes::path::PathScheme;
use dpc::core::schemes::spanning_tree::SpanningTreeScheme;
use dpc::core::schemes::universal::UniversalScheme;
use dpc::graph::generators;
use dpc::prelude::*;

fn show<S: ProofLabelingScheme>(scheme: &S, g: &dpc::graph::Graph, instance: &str) {
    match run_pls(scheme, g) {
        Ok(out) => println!(
            "{:<18} {:<22} n={:<5} rounds={} max_bits={:<6} verdict={}",
            scheme.name(),
            instance,
            g.node_count(),
            out.rounds,
            out.max_cert_bits,
            if out.all_accept() {
                "all accept"
            } else {
                "REJECTED"
            }
        ),
        Err(e) => println!(
            "{:<18} {:<22} n={:<5} prover declines: {e}",
            scheme.name(),
            instance,
            g.node_count()
        ),
    }
}

fn main() {
    println!("scheme             instance               parameters\n");

    // §2 warm-up: paths
    show(&PathScheme::new(), &generators::path(100), "path(100)");
    show(&PathScheme::new(), &generators::cycle(100), "cycle(100)");

    // the folklore substrate: spanning trees (class: connected graphs)
    show(
        &SpanningTreeScheme::new(),
        &generators::grid(10, 10),
        "grid(10x10)",
    );

    // Lemma 2: path-outerplanarity
    let po = generators::random_path_outerplanar(150, 60, 7);
    show(&PathOuterplanarScheme::new(), &po, "path-outerplanar");

    // Theorem 1: planarity — the paper's main scheme
    show(
        &PlanarityScheme::new(),
        &generators::stacked_triangulation(500, 1),
        "triangulation(500)",
    );
    show(&PlanarityScheme::new(), &generators::complete(5), "K5");

    // §2 folklore: non-planarity
    show(&NonPlanarityScheme::new(), &generators::complete(5), "K5");
    show(
        &NonPlanarityScheme::new(),
        &generators::grid(5, 5),
        "grid(5x5)",
    );

    // the O(m log n) universal baseline
    show(
        &UniversalScheme::new(),
        &generators::stacked_triangulation(500, 1),
        "triangulation(500)",
    );

    println!("\nnote how the planarity scheme's certificates stay a few hundred bits");
    println!("while the universal baseline grows linearly with the graph.");
}
